// A minimal TOML subset decoder, just big enough for hand-written
// scenario files: [tables], [[arrays of tables]], and `key = value`
// lines with basic strings, integers, floats, booleans and one-line
// arrays of scalars. The module is dependency-free by policy, so this
// stays a subset by design — no multi-line strings, no inline tables,
// no dates. Everything it accepts converts losslessly to the JSON
// schema in scenario.go; ParseTOML funnels the result through the
// same strict decoder as Parse.

package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// decodeTOML parses the subset into nested maps/slices ready for
// json.Marshal.
func decodeTOML(raw []byte) (map[string]any, error) {
	root := map[string]any{}
	cur := root
	for ln, line := range strings.Split(string(raw), "\n") {
		s := strings.TrimSpace(stripTOMLComment(line))
		if s == "" {
			continue
		}
		lineErr := func(err error) error { return fmt.Errorf("line %d: %w", ln+1, err) }
		switch {
		case strings.HasPrefix(s, "[[") && strings.HasSuffix(s, "]]"):
			path, err := tomlPath(s[2 : len(s)-2])
			if err != nil {
				return nil, lineErr(err)
			}
			parent, err := tomlWalk(root, path[:len(path)-1])
			if err != nil {
				return nil, lineErr(err)
			}
			key := path[len(path)-1]
			arr, ok := parent[key].([]any)
			if !ok && parent[key] != nil {
				return nil, lineErr(fmt.Errorf("%q is not an array of tables", key))
			}
			m := map[string]any{}
			parent[key] = append(arr, any(m))
			cur = m
		case strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]"):
			path, err := tomlPath(s[1 : len(s)-1])
			if err != nil {
				return nil, lineErr(err)
			}
			t, err := tomlWalk(root, path)
			if err != nil {
				return nil, lineErr(err)
			}
			cur = t
		default:
			key, val, ok := strings.Cut(s, "=")
			if !ok {
				return nil, lineErr(fmt.Errorf("expected `key = value`, a [table] or an [[array of tables]], got %q", s))
			}
			k := strings.TrimSpace(key)
			if err := tomlBareKey(k); err != nil {
				return nil, lineErr(err)
			}
			if _, exists := cur[k]; exists {
				return nil, lineErr(fmt.Errorf("duplicate key %q", k))
			}
			v, err := tomlValue(strings.TrimSpace(val))
			if err != nil {
				return nil, lineErr(err)
			}
			cur[k] = v
		}
	}
	return root, nil
}

// stripTOMLComment removes a trailing # comment, respecting strings.
func stripTOMLComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inStr {
				i++ // skip the escaped char
			}
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// tomlPath splits a dotted table header into validated bare keys.
func tomlPath(s string) ([]string, error) {
	parts := strings.Split(s, ".")
	for i, p := range parts {
		parts[i] = strings.TrimSpace(p)
		if err := tomlBareKey(parts[i]); err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// tomlBareKey accepts the bare-key alphabet (letters, digits, _ , -).
func tomlBareKey(s string) error {
	if s == "" {
		return fmt.Errorf("empty key")
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return fmt.Errorf("key %q: only bare keys (letters, digits, _ and -) are supported", s)
		}
	}
	return nil
}

// tomlWalk descends (creating as needed) to the table at path. An
// intermediate segment that is an array of tables means its last
// element, TOML's rule for subtables of [[entries]].
func tomlWalk(root map[string]any, path []string) (map[string]any, error) {
	cur := root
	for _, key := range path {
		switch v := cur[key].(type) {
		case nil:
			m := map[string]any{}
			cur[key] = m
			cur = m
		case map[string]any:
			cur = v
		case []any:
			last, ok := v[len(v)-1].(map[string]any)
			if !ok {
				return nil, fmt.Errorf("%q is not a table", key)
			}
			cur = last
		default:
			return nil, fmt.Errorf("%q is not a table", key)
		}
	}
	return cur, nil
}

// tomlValue parses one scalar or one-line array.
func tomlValue(s string) (any, error) {
	switch {
	case s == "":
		return nil, fmt.Errorf("missing value")
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s[0] == '"':
		v, rest, err := tomlString(s)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("trailing data after string: %q", rest)
		}
		return v, nil
	case s[0] == '[':
		return tomlArray(s)
	default:
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return i, nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f, nil
		}
		return nil, fmt.Errorf("unsupported value %q (the subset takes strings, numbers, booleans and one-line arrays)", s)
	}
}

// tomlString parses a leading basic string, returning it and the
// unconsumed remainder.
func tomlString(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("unterminated escape in %q", s)
			}
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			default:
				return "", "", fmt.Errorf("unsupported escape \\%c", s[i])
			}
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated string %q", s)
}

// tomlArray parses a one-line array of scalars.
func tomlArray(s string) (any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("unterminated array %q (arrays must close on the same line)", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	out := []any{}
	for inner != "" {
		var item string
		if inner[0] == '"' {
			v, rest, err := tomlString(inner)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			inner = strings.TrimSpace(rest)
			if inner != "" {
				if inner[0] != ',' {
					return nil, fmt.Errorf("expected ',' in array, got %q", inner)
				}
				inner = strings.TrimSpace(inner[1:])
			}
			continue
		}
		item, inner, _ = strings.Cut(inner, ",")
		inner = strings.TrimSpace(inner)
		v, err := tomlValue(strings.TrimSpace(item))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
