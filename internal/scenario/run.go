// Running a compiled scenario and gating the results. Evaluate is the
// distributional CI check: one deterministic run per seed, aggregated
// through the same percentile machinery as experiments.Sweep, then
// compared against the scenario's declared bands. Reports never print
// wall-clock anything, so the output of two runs (or two engines)
// diffs clean.

package scenario

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"packetradio/internal/experiments"
)

// RunStats is one seed's outcome: baseline and pair-flow probes
// combined.
type RunStats struct {
	Seed          int64
	Sent, Replies uint64
	Delivery      float64 // Replies/Sent (0 when nothing was sent)

	// RTTs holds every reply's round-trip time in deterministic order
	// (baseline probes first, then pair flows, each merged by virtual
	// time and shard).
	RTTs []time.Duration

	// ControlShare is MAC control airtime over total airtime, summed
	// across channels (0 when the channels never carried a frame).
	ControlShare float64

	// SpanShares and SpanDurs are the per-stage latency-attribution
	// samples from the tracer (one share and one duration per complete
	// trace, keyed by stage name). Nil unless the runner had a tracer.
	SpanShares map[string][]float64
	SpanDurs   map[string][]time.Duration
}

// RTTPercentile reports the p-th percentile (0..100) of this seed's
// RTTs, 0 if there were no replies.
func (s *RunStats) RTTPercentile(p int) time.Duration {
	if len(s.RTTs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), s.RTTs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Run steps the world through warmup plus the timed window and
// collects the stats. A Runner runs once.
func (r *Runner) Run() RunStats {
	if r.ran {
		panic("scenario: Runner.Run called twice (Compile a fresh one per run)")
	}
	r.ran = true
	r.W.Run(r.Scenario.Run.Warmup.D())
	if r.Tracer != nil {
		// Gate the timed window only: traces cut in half by the warmup
		// boundary would otherwise skew the attribution.
		r.Tracer.Reset()
	}
	r.W.Run(r.Scenario.Run.Duration.D())
	return r.Stats()
}

// Stats assembles the RunStats for the run so far. Valid only after a
// W.Run window (the merge hooks fire at run end).
func (r *Runner) Stats() RunStats {
	st := RunStats{Seed: r.Seed}
	if lw := r.Large; lw != nil {
		st.Sent += lw.Sent
		st.Replies += lw.Replies
		st.RTTs = append(st.RTTs, lw.RTTs...)
	}
	st.Sent += r.pairSent
	st.Replies += r.pairReplies
	st.RTTs = append(st.RTTs, r.pairRTTs...)
	if st.Sent > 0 {
		st.Delivery = float64(st.Replies) / float64(st.Sent)
	}
	var air, ctl time.Duration
	for _, ch := range r.Channels {
		air += ch.Stats.Airtime
		ctl += ch.Stats.ControlAirtime
	}
	if air > 0 {
		st.ControlShare = float64(ctl) / float64(air)
	}
	if r.Tracer != nil {
		bd := r.Tracer.Breakdown()
		st.SpanShares = make(map[string][]float64)
		st.SpanDurs = make(map[string][]time.Duration)
		for _, stage := range bd.Stages() {
			st.SpanShares[stage] = bd.ShareSamples(stage)
			st.SpanDurs[stage] = bd.DurationSamples(stage)
		}
	}
	return st
}

// GateCheck is one gate comparison.
type GateCheck struct {
	Name  string
	Value string
	Bound string
	OK    bool
}

// GateReport is a full scenario evaluation: the per-seed stats, the
// across-seed aggregation, and every gate's verdict.
type GateReport struct {
	Scenario *Scenario
	Workers  int // engine workers each run used
	Point    experiments.SweepPoint
	Stats    []RunStats // seed order
	Checks   []GateCheck
}

// Pass reports whether every gate held.
func (g *GateReport) Pass() bool {
	for _, c := range g.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// Evaluate sweeps the scenario across seeds 1..seeds (0 = the
// scenario's gates.seeds, default 8) and checks its gates. workers
// selects the engine for every run, exactly as Compile's parameter;
// runs for different seeds execute concurrently up to GOMAXPROCS, which
// cannot affect results (each seed is an independent deterministic
// world and the aggregation is order-free).
func Evaluate(sc *Scenario, seeds, workers int) (*GateReport, error) {
	if seeds <= 0 {
		seeds = 8
		if sc.Gates != nil && sc.Gates.Seeds > 0 {
			seeds = sc.Gates.Seeds
		}
	}
	// Compile once up front so a compile error surfaces as an error,
	// not a panic inside the sweep goroutines.
	if _, err := Compile(sc, 1, workers); err != nil {
		return nil, err
	}
	rep := &GateReport{Scenario: sc, Workers: workers, Stats: make([]RunStats, seeds)}
	rep.Point = experiments.SweepRuns(seeds, runtime.GOMAXPROCS(0), func(seed int64) experiments.RunSample {
		r, err := Compile(sc, seed, workers)
		if err != nil {
			panic(err) // seed-independent; the probe above caught it
		}
		st := r.Run()
		rep.Stats[seed-1] = st
		return experiments.RunSample{Delivery: st.Delivery, RTTs: st.RTTs}
	})
	rep.check()
	return rep, nil
}

// check fills Checks from the scenario's gates.
func (g *GateReport) check() {
	gates := g.Scenario.Gates
	if gates == nil {
		return
	}
	add := func(name string, ok bool, value, bound string) {
		g.Checks = append(g.Checks, GateCheck{Name: name, Value: value, Bound: bound, OK: ok})
	}
	ratio := func(v float64) string { return fmt.Sprintf("%.3f", v) }
	if d := gates.Delivery; d != nil {
		if d.MedianMin > 0 {
			add("delivery.median", g.Point.DeliveryMedian >= d.MedianMin,
				ratio(g.Point.DeliveryMedian), ">= "+ratio(d.MedianMin))
		}
		if d.P95Min > 0 {
			add("delivery.p95", g.Point.DeliveryP95 >= d.P95Min,
				ratio(g.Point.DeliveryP95), ">= "+ratio(d.P95Min))
		}
		if d.MinMin > 0 {
			add("delivery.min", g.Point.DeliveryMin >= d.MinMin,
				ratio(g.Point.DeliveryMin), ">= "+ratio(d.MinMin))
		}
	}
	if rt := gates.RTT; rt != nil {
		if rt.MedianMax > 0 {
			add("rtt.median", g.Point.RTTMedian <= rt.MedianMax.D(),
				g.Point.RTTMedian.String(), "<= "+rt.MedianMax.String())
		}
		if rt.P95Max > 0 {
			add("rtt.p95", g.Point.RTTP95 <= rt.P95Max.D(),
				g.Point.RTTP95.String(), "<= "+rt.P95Max.String())
		}
	}
	if max := gates.ControlAirtimeShareMax; max > 0 {
		worst := 0.0
		for _, st := range g.Stats {
			if st.ControlShare > worst {
				worst = st.ControlShare
			}
		}
		add("control_airtime.share", worst <= max, ratio(worst), "<= "+ratio(max))
	}
	for _, sl := range gates.SpanLatency {
		var shares []float64
		var durs []time.Duration
		for _, st := range g.Stats {
			shares = append(shares, st.SpanShares[sl.Stage]...)
			durs = append(durs, st.SpanDurs[sl.Stage]...)
		}
		if sl.ShareP95Max > 0 {
			if len(shares) == 0 {
				add("span."+sl.Stage+".share_p95", false, "no traces", "<= "+ratio(sl.ShareP95Max))
			} else {
				p95 := floatPercentile(shares, 95)
				add("span."+sl.Stage+".share_p95", p95 <= sl.ShareP95Max,
					ratio(p95), "<= "+ratio(sl.ShareP95Max))
			}
		}
		if sl.P95Max > 0 {
			if len(durs) == 0 {
				add("span."+sl.Stage+".p95", false, "no traces", "<= "+sl.P95Max.String())
			} else {
				p95 := durPercentile(durs, 95)
				add("span."+sl.Stage+".p95", p95 <= sl.P95Max.D(),
					p95.String(), "<= "+sl.P95Max.String())
			}
		}
	}
}

// floatPercentile reports the p-th percentile of vs by the same
// index rule RTTPercentile uses, so span gates and RTT gates agree on
// what "p95" means. vs may arrive unsorted and is not modified.
func floatPercentile(vs []float64, p int) float64 {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func durPercentile(vs []time.Duration, p int) time.Duration {
	sorted := append([]time.Duration(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteText renders the report: the scenario summary, one line per
// seed, the aggregates, and each gate's verdict. Deterministic for a
// given scenario and seed count at any engine worker count — CI diffs
// the -workers 1 and -workers 4 outputs byte for byte.
func (g *GateReport) WriteText(w io.Writer) {
	fmt.Fprintln(w, g.Scenario.Summary())
	fmt.Fprintf(w, "engine: workers=%d, seeds=%d\n", g.Workers, len(g.Stats))
	fmt.Fprintf(w, "%6s %8s %8s %9s %12s %12s %14s\n",
		"seed", "sent", "replies", "delivery", "rtt_p50", "rtt_p95", "control_share")
	for _, st := range g.Stats {
		fmt.Fprintf(w, "%6d %8d %8d %9.3f %12s %12s %14.3f\n",
			st.Seed, st.Sent, st.Replies, st.Delivery,
			st.RTTPercentile(50), st.RTTPercentile(95), st.ControlShare)
	}
	fmt.Fprintf(w, "across seeds: delivery median=%.3f p95=%.3f min=%.3f, rtt median=%s p95=%s\n",
		g.Point.DeliveryMedian, g.Point.DeliveryP95, g.Point.DeliveryMin,
		g.Point.RTTMedian, g.Point.RTTP95)
	if len(g.Checks) == 0 {
		fmt.Fprintln(w, "gates: none declared")
		return
	}
	for _, c := range g.Checks {
		verdict := "ok"
		if !c.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "gate %-24s %s (want %s) ... %s\n", c.Name, c.Value, c.Bound, verdict)
	}
	if g.Pass() {
		fmt.Fprintln(w, "gates: PASS")
	} else {
		fmt.Fprintln(w, "gates: FAIL")
	}
}

// Report renders WriteText to a string.
func (g *GateReport) Report() string {
	var b strings.Builder
	g.WriteText(&b)
	return b.String()
}
