// Validation: every rule that can be checked without building a
// world. Problems are collected, not short-circuited, so a malformed
// file reports everything wrong with it at once; each message carries
// the field path that caused it. SCENARIOS.md documents the rules in
// prose.

package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"packetradio/internal/obs"
	"packetradio/internal/world"
)

// ValidationError aggregates every rule a scenario breaks.
type ValidationError struct {
	Name     string
	Problems []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("scenario %q: %d problem(s):\n  - %s",
		e.Name, len(e.Problems), strings.Join(e.Problems, "\n  - "))
}

// hostRef is a resolved scenario host: its canonical name and the
// 0-based radio channel it sits on (-1 for Ethernet-only hosts).
type hostRef struct {
	name    string
	channel int
}

// resolveHost maps a scenario host name onto the topology's naming
// scheme: large worlds have "st0".."stN-1" (station i on channel
// i%channels), "gw1".."gwM" and "inet"; seattle has "pc1".."pcN",
// "uw-gw", "june" and (with second_gateway) "uw-gw2".
func (sc *Scenario) resolveHost(name string) (hostRef, error) {
	t := &sc.Topology
	numeric := func(prefix string) (int, bool) {
		rest := strings.TrimPrefix(name, prefix)
		n, err := strconv.Atoi(rest)
		if err != nil || prefix+strconv.Itoa(n) != name {
			return 0, false
		}
		return n, true
	}
	if t.Base == "seattle" {
		switch name {
		case "uw-gw":
			return hostRef{name, 0}, nil
		case "uw-gw2":
			if !t.SecondGateway {
				return hostRef{}, fmt.Errorf("host %q needs topology.second_gateway", name)
			}
			return hostRef{name, 0}, nil
		case "june":
			return hostRef{name, -1}, nil
		}
		if i, ok := numeric("pc"); ok {
			if i < 1 || i > t.Stations {
				return hostRef{}, fmt.Errorf("host %q out of range (pcs are pc1..pc%d)", name, t.Stations)
			}
			return hostRef{name, 0}, nil
		}
		return hostRef{}, fmt.Errorf("unknown host %q (seattle hosts: pc1..pc%d, uw-gw, june)", name, t.Stations)
	}
	if name == "inet" {
		return hostRef{name, -1}, nil
	}
	if i, ok := numeric("st"); ok {
		if i < 0 || i >= t.Stations {
			return hostRef{}, fmt.Errorf("host %q out of range (stations are st0..st%d)", name, t.Stations-1)
		}
		return hostRef{name, i % t.Channels}, nil
	}
	if c, ok := numeric("gw"); ok {
		if c < 1 || c > t.Channels {
			return hostRef{}, fmt.Errorf("host %q out of range (gateways are gw1..gw%d)", name, t.Channels)
		}
		return hostRef{name, c - 1}, nil
	}
	return hostRef{}, fmt.Errorf("unknown host %q (large hosts: st0..st%d, gw1..gw%d, inet)",
		name, t.Stations-1, t.Channels)
}

// stationIndex maps a probe-capable host name ("st3" / "pc2") to its
// 0-based index into the runner's station list.
func (sc *Scenario) stationIndex(name string) (int, bool) {
	if sc.Topology.Base == "seattle" {
		rest := strings.TrimPrefix(name, "pc")
		if i, err := strconv.Atoi(rest); err == nil && "pc"+strconv.Itoa(i) == name {
			return i - 1, true
		}
		return 0, false
	}
	rest := strings.TrimPrefix(name, "st")
	if i, err := strconv.Atoi(rest); err == nil && "st"+strconv.Itoa(i) == name {
		return i, true
	}
	return 0, false
}

// Validate checks every static rule and returns a *ValidationError
// listing all violations, or nil. Call Normalize first (Parse and
// Load do).
func (sc *Scenario) Validate() error {
	var probs []string
	bad := func(field, format string, args ...any) {
		probs = append(probs, field+": "+fmt.Sprintf(format, args...))
	}
	t := &sc.Topology
	end := sc.End()

	if sc.Name == "" {
		bad("name", "required")
	}
	for _, r := range sc.Name {
		if r == ' ' || r == '\t' || r == '\n' {
			bad("name", "%q contains whitespace (it labels metrics and files)", sc.Name)
			break
		}
	}

	seattle := false
	switch t.Base {
	case "large":
	case "seattle":
		seattle = true
	default:
		bad("topology.base", "unknown base %q (want \"large\" or \"seattle\")", t.Base)
		return &ValidationError{Name: sc.Name, Problems: probs} // nothing below resolves
	}
	if t.Stations < 1 || t.Stations > 1000 {
		bad("topology.stations", "%d out of range 1..1000", t.Stations)
	}
	if seattle {
		if t.Channels > 1 {
			bad("topology.channels", "the seattle base has exactly one channel")
		}
		if t.NoAutoARP {
			bad("topology.no_auto_arp", "large base only (seattle already speaks strict RFC 826)")
		}
	} else {
		if t.Channels < 1 || t.Channels > 200 {
			bad("topology.channels", "%d out of range 1..200", t.Channels)
		}
		if t.SecondGateway {
			bad("topology.second_gateway", "seattle base only")
		}
	}
	if t.BitRate < 300 {
		bad("topology.bit_rate", "%d below 300 bps", t.BitRate)
	}
	if t.Baud < 300 {
		bad("topology.baud", "%d below 300", t.Baud)
	}
	if _, err := world.ParseMACMode(t.MAC); err != nil {
		bad("topology.mac", "%v", err)
	}
	for i, cut := range t.Cuts {
		field := fmt.Sprintf("topology.cuts[%d]", i)
		sc.checkRadioPair(field, cut.A, cut.B, bad)
	}

	tr := &sc.Traffic
	if _, err := world.ParseTransportMode(tr.Transport); err != nil {
		bad("traffic.transport", "%v", err)
	} else if seattle && tr.Transport != "icmp" {
		bad("traffic.transport", "%q: the seattle base carries icmp probes only", tr.Transport)
	}
	if tr.ProbeInterval == 0 {
		if len(tr.Diurnal) > 0 {
			bad("traffic.diurnal", "needs traffic.probe_interval (it shapes the baseline rate)")
		}
	}
	var prev Duration
	for i, p := range tr.Diurnal {
		field := fmt.Sprintf("traffic.diurnal[%d]", i)
		if p.Rate <= 0 {
			bad(field+".rate", "%v must be > 0", p.Rate)
		}
		if i > 0 && p.At <= prev {
			bad(field+".at", "%v not after %v (points must ascend)", p.At, prev)
		}
		prev = p.At
	}
	for i, f := range tr.FlashCrowds {
		field := fmt.Sprintf("traffic.flash_crowds[%d]", i)
		if f.First < 0 || f.Stations < 1 || f.First+f.Stations > t.Stations {
			bad(field, "stations [%d..%d) outside the topology's 0..%d", f.First, f.First+f.Stations, t.Stations-1)
		}
		if f.Probes < 1 || f.Probes > 1000 {
			bad(field+".probes", "%d out of range 1..1000", f.Probes)
		}
		if f.At.D() >= end {
			bad(field+".at", "%v is at or beyond the run end (%v)", f.At, end)
		}
	}
	for i, p := range tr.Pairs {
		field := fmt.Sprintf("traffic.pairs[%d]", i)
		if p.From == p.To {
			bad(field, "from and to are both %q", p.From)
		}
		if _, err := sc.resolveHost(p.From); err != nil {
			bad(field+".from", "%v", err)
		}
		if _, err := sc.resolveHost(p.To); err != nil {
			bad(field+".to", "%v", err)
		}
		if p.Interval == 0 {
			bad(field+".interval", "required (and > 0)")
		}
		if p.Size < 1 || p.Size > 576 {
			bad(field+".size", "%d out of range 1..576", p.Size)
		}
		if p.Start.D() >= end {
			bad(field+".start", "%v is at or beyond the run end (%v)", p.Start, end)
		}
		if p.Stop != 0 && p.Stop <= p.Start {
			bad(field+".stop", "%v not after start %v", p.Stop, p.Start)
		}
	}

	channels := t.Channels
	if seattle {
		channels = 1
	}
	for i, f := range sc.Failures {
		field := fmt.Sprintf("failures[%d]", i)
		checkWindow := func() {
			if f.Until.D() > end {
				bad(field+".until", "%v beyond the run end (%v)", f.Until, end)
			}
			if f.From >= f.Until {
				bad(field+".from", "%v not before until (%v)", f.From, f.Until)
			}
		}
		checkUnused := func(ok ...string) {
			has := map[string]bool{}
			for _, f := range ok {
				has[f] = true
			}
			if f.A != "" && !has["a"] {
				bad(field+".a", "not a %s field", f.Kind)
			}
			if f.B != "" && !has["b"] {
				bad(field+".b", "not a %s field", f.Kind)
			}
			if f.Channel != 0 && !has["channel"] {
				bad(field+".channel", "not a %s field", f.Kind)
			}
			if f.UpFor != 0 && !has["up_for"] {
				bad(field+".up_for", "not a %s field", f.Kind)
			}
			if f.Every != 0 && !has["every"] {
				bad(field+".every", "not a %s field", f.Kind)
			}
		}
		checkChannel := func() {
			if f.Channel < 1 || f.Channel > channels {
				bad(field+".channel", "%d out of range 1..%d", f.Channel, channels)
			}
		}
		switch f.Kind {
		case "flap":
			checkUnused("a", "b", "up_for")
			sc.checkRadioPair(field, f.A, f.B, bad)
			if f.DownFor == 0 {
				bad(field+".down_for", "required (and > 0)")
			}
			if f.UpFor == 0 {
				bad(field+".up_for", "required (and > 0) — the hysteresis dwell")
			}
			checkWindow()
		case "partition":
			checkUnused("channel")
			checkChannel()
			if f.DownFor != 0 {
				bad(field+".down_for", "not a partition field (the window is from..until)")
			}
			checkWindow()
		case "master_churn":
			checkUnused("channel", "every")
			checkChannel()
			if t.MAC != "dama" {
				bad(field, "master_churn needs topology.mac = \"dama\"")
			}
			if f.Every == 0 {
				bad(field+".every", "required (and > 0)")
			}
			if f.DownFor == 0 {
				bad(field+".down_for", "required (and > 0)")
			} else if f.Every != 0 && f.DownFor >= f.Every {
				bad(field+".down_for", "%v not below every (%v)", f.DownFor, f.Every)
			}
			checkWindow()
		default:
			bad(field+".kind", "unknown kind %q (want flap, partition or master_churn)", f.Kind)
		}
	}

	if sc.Run.Duration == 0 {
		bad("run.duration", "required (and > 0)")
	}

	if g := sc.Gates; g != nil {
		if g.Seeds < 1 || g.Seeds > 1024 {
			bad("gates.seeds", "%d out of range 1..1024", g.Seeds)
		}
		ratio := func(field string, v float64) {
			if v < 0 || v > 1 {
				bad(field, "%v outside 0..1", v)
			}
		}
		if d := g.Delivery; d != nil {
			ratio("gates.delivery.median_min", d.MedianMin)
			ratio("gates.delivery.p95_min", d.P95Min)
			ratio("gates.delivery.min_min", d.MinMin)
		}
		ratio("gates.control_airtime_share_max", g.ControlAirtimeShareMax)
		for i, sl := range g.SpanLatency {
			field := fmt.Sprintf("gates.span_latency[%d]", i)
			known := false
			for _, st := range obs.SpanStages() {
				if sl.Stage == st {
					known = true
					break
				}
			}
			if !known {
				bad(field+".stage", "unknown stage %q (want one of %s)",
					sl.Stage, strings.Join(obs.SpanStages(), ", "))
			}
			if sl.ShareP95Max < 0 || sl.ShareP95Max > 1 {
				bad(field+".share_p95_max", "%v outside 0..1", sl.ShareP95Max)
			}
			if sl.ShareP95Max == 0 && sl.P95Max == 0 {
				bad(field, "needs share_p95_max or p95_max")
			}
		}
	}

	if probs != nil {
		return &ValidationError{Name: sc.Name, Problems: probs}
	}
	return nil
}

// checkRadioPair validates that two named hosts exist and share a
// radio channel — the precondition for cuts and flaps, and (because a
// shared radio channel means a single shard) what keeps link churn
// engine-independent: the sharded engine may only mutate reachability
// from the owning shard.
func (sc *Scenario) checkRadioPair(field, a, b string, bad func(field, format string, args ...any)) {
	if a == b {
		bad(field, "a and b are both %q", a)
		return
	}
	ra, errA := sc.resolveHost(a)
	if errA != nil {
		bad(field+".a", "%v", errA)
	}
	rb, errB := sc.resolveHost(b)
	if errB != nil {
		bad(field+".b", "%v", errB)
	}
	if errA != nil || errB != nil {
		return
	}
	if ra.channel < 0 || rb.channel < 0 {
		bad(field, "%q and %q must both be radio hosts", a, b)
		return
	}
	if ra.channel != rb.channel {
		bad(field, "%q (channel %d) and %q (channel %d) share no radio channel",
			a, ra.channel+1, b, rb.channel+1)
	}
}
