package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// busyScenario exercises every moving part at once: multi-channel
// topology with a starting cut, diurnal-shaped baseline, a flash
// crowd, pair flows (station-to-station across the backbone and
// inet-sourced), and all three failure kinds would not fit (churn
// needs dama), so it carries a flap and a partition.
const busyScenario = `{
	"name": "busy",
	"topology": {
		"stations": 8,
		"channels": 2,
		"cuts": [{"a": "st0", "b": "st2"}]
	},
	"traffic": {
		"probe_interval": "30s",
		"diurnal": [{"at": "60s", "rate": 2.0}],
		"flash_crowds": [{"at": "45s", "first": 0, "stations": 4, "probes": 2, "spacing": "1s", "stagger": "250ms"}],
		"pairs": [
			{"from": "st1", "to": "st2", "interval": "40s", "start": "20s"},
			{"from": "inet", "to": "st3", "interval": "50s", "start": "25s"}
		]
	},
	"failures": [
		{"kind": "flap", "a": "gw1", "b": "st0", "from": "50s", "down_for": "10s", "up_for": "20s"},
		{"kind": "partition", "channel": 2, "from": "70s", "until": "100s"}
	],
	"run": {"warmup": "30s", "duration": "120s"}
}`

// TestDeterminismAcrossEngines is the scenario layer's version of the
// shard-equivalence gate: the same scenario and seed must produce
// bit-identical stats on the single-loop engine and on the sharded
// engine at different worker counts — including the order of the
// merged RTT series, not just its distribution.
func TestDeterminismAcrossEngines(t *testing.T) {
	sc, err := Parse([]byte(busyScenario))
	if err != nil {
		t.Fatal(err)
	}
	var ref RunStats
	for _, workers := range []int{0, 1, 3} {
		r, err := Compile(sc, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		st := r.Run()
		if st.Sent == 0 || st.Replies == 0 {
			t.Fatalf("workers=%d: no traffic (sent=%d replies=%d)", workers, st.Sent, st.Replies)
		}
		if workers == 0 {
			ref = st
			continue
		}
		if !reflect.DeepEqual(ref, st) {
			t.Errorf("workers=%d diverges from single-loop:\n  ref: sent=%d replies=%d rtts=%d\n  got: sent=%d replies=%d rtts=%d",
				workers, ref.Sent, ref.Replies, len(ref.RTTs), st.Sent, st.Replies, len(st.RTTs))
		}
	}
}

// TestDeterminismSameEngine reruns one (scenario, seed, engine) pair
// and expects identical stats — the basic reproducibility contract.
func TestDeterminismSameEngine(t *testing.T) {
	sc, err := Parse([]byte(busyScenario))
	if err != nil {
		t.Fatal(err)
	}
	run := func() RunStats {
		r, err := Compile(sc, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		return r.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs differ: %+v vs %+v", a, b)
	}
}

// TestSeattleCompile runs a seattle-base scenario end to end on the
// single-loop engine and rejects the sharded one.
func TestSeattleCompile(t *testing.T) {
	src := []byte(`{
		"name": "s",
		"topology": {"base": "seattle", "stations": 2},
		"traffic": {"probe_interval": "45s"},
		"run": {"duration": "90s"}
	}`)
	sc, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(sc, 1, 2); err == nil {
		t.Fatal("seattle base accepted workers > 0")
	}
	r, err := Compile(sc, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Run()
	if st.Sent == 0 || st.Replies == 0 {
		t.Fatalf("no seattle traffic: %+v", st)
	}
}

// TestEvaluateGates runs a tiny gated scenario and checks both a pass
// and an impossible bound failing.
func TestEvaluateGates(t *testing.T) {
	sc, err := Parse([]byte(`{
		"name": "gated",
		"topology": {"stations": 4, "channels": 1},
		"traffic": {"probe_interval": "30s"},
		"run": {"duration": "90s"},
		"gates": {"seeds": 3, "delivery": {"median_min": 0.2}, "rtt": {"p95_max": "2m"}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Evaluate(sc, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stats) != 3 {
		t.Fatalf("seeds: got %d runs, want gates.seeds=3", len(rep.Stats))
	}
	if !rep.Pass() {
		t.Fatalf("generous gates failed:\n%s", rep.Report())
	}
	if !strings.Contains(rep.Report(), "gates: PASS") {
		t.Fatalf("report missing verdict:\n%s", rep.Report())
	}

	sc.Gates.Delivery.MedianMin = 1.01 // unreachable: delivery is a ratio
	rep2, err := Evaluate(sc, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Pass() {
		t.Fatal("impossible gate passed")
	}
}

// TestSuiteGates evaluates every committed scenario against its own
// gates on both engines — the same check CI's scenario job runs, kept
// in-tree so a band regression fails locally first. The whole suite is
// sub-second, so this stays in the default test run.
func TestSuiteGates(t *testing.T) {
	for _, path := range suiteFiles(t) {
		sc, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Gates == nil {
			t.Errorf("%s: committed scenarios must declare gates", path)
			continue
		}
		workersToTry := []int{0, 4}
		if sc.Topology.Base == "seattle" {
			workersToTry = []int{0}
		}
		var ref *GateReport
		for _, workers := range workersToTry {
			rep, err := Evaluate(sc, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass() {
				t.Errorf("%s (workers=%d) failed its gates:\n%s", path, workers, rep.Report())
			}
			if ref == nil {
				ref = rep
				continue
			}
			if !reflect.DeepEqual(ref.Stats, rep.Stats) {
				t.Errorf("%s: per-seed stats differ between engines", path)
			}
		}
	}
}
