package scenario

import (
	"strings"
	"testing"
)

func TestTOMLDecode(t *testing.T) {
	tree, err := decodeTOML([]byte(`
# comment line
name = "x # not a comment"   # trailing comment
flag = true
count = 3
ratio = 1.5
list = [1, "two", 3.0]

[table]
key = "v"

[table.sub]
deep = 1

[[arr]]
a = 1

[[arr]]
a = 2
`))
	if err != nil {
		t.Fatal(err)
	}
	if tree["name"] != "x # not a comment" || tree["flag"] != true || tree["count"] != int64(3) || tree["ratio"] != 1.5 {
		t.Fatalf("scalars: %+v", tree)
	}
	list := tree["list"].([]any)
	if len(list) != 3 || list[0] != int64(1) || list[1] != "two" || list[2] != 3.0 {
		t.Fatalf("list: %+v", list)
	}
	table := tree["table"].(map[string]any)
	if table["key"] != "v" || table["sub"].(map[string]any)["deep"] != int64(1) {
		t.Fatalf("tables: %+v", table)
	}
	arr := tree["arr"].([]any)
	if len(arr) != 2 || arr[1].(map[string]any)["a"] != int64(2) {
		t.Fatalf("array of tables: %+v", arr)
	}
}

func TestTOMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bare junk", "not a key value", "expected `key = value`"},
		{"duplicate key", "a = 1\na = 2", "duplicate key"},
		{"unterminated string", `a = "oops`, "unterminated string"},
		{"bad escape", `a = "\q"`, `unsupported escape`},
		{"multiline array", "a = [1,\n2]", "unterminated array"},
		{"dotted value key", "a.b = 1", "only bare keys"},
		{"missing value", "a =", "missing value"},
		{"weird scalar", "a = 1988-05-01", "unsupported value"},
		{"redefined as array", "[x]\nk = 1\n[[x]]\na = 1", "not an array of tables"},
	}
	for _, tc := range cases {
		_, err := decodeTOML([]byte(tc.src))
		if err == nil {
			t.Errorf("%s: accepted, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if !strings.Contains(err.Error(), "line ") {
			t.Errorf("%s: error %q carries no line number", tc.name, err)
		}
	}
}
