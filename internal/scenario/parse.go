// Parsing and re-emitting scenario files. JSON is the canonical
// format; a TOML subset (see toml.go) is accepted for hand-written
// files. Unknown fields are errors in both — a typoed "probe_intervl"
// must not silently become an idle scenario.

package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Load reads, parses, normalizes and validates a scenario file,
// choosing the format by extension (".json" or ".toml").
func Load(path string) (*Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sc *Scenario
	switch ext := filepath.Ext(path); ext {
	case ".json":
		sc, err = Parse(raw)
	case ".toml":
		sc, err = ParseTOML(raw)
	default:
		return nil, fmt.Errorf("%s: unknown scenario extension %q (want .json or .toml)", path, ext)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Parse decodes a JSON scenario, fills defaults and validates.
func Parse(raw []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	sc := &Scenario{}
	if err := dec.Decode(sc); err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	// A second object after the first is a concatenation mistake.
	if dec.More() {
		return nil, fmt.Errorf("parse: trailing data after the scenario object")
	}
	sc.Normalize()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// ParseTOML decodes a scenario in the TOML subset of toml.go by
// converting it to the equivalent JSON document and running it
// through the same strict decode, defaulting and validation — one
// schema, two spellings.
func ParseTOML(raw []byte) (*Scenario, error) {
	tree, err := decodeTOML(raw)
	if err != nil {
		return nil, fmt.Errorf("parse toml: %w", err)
	}
	buf, err := json.Marshal(tree)
	if err != nil {
		return nil, fmt.Errorf("parse toml: %w", err)
	}
	return Parse(buf)
}

// EmitJSON renders the scenario as canonical, normalized JSON — what
// the golden round-trip tests compare and what a TOML scenario
// converts to. Parse(EmitJSON(sc)) reproduces sc exactly.
func (sc *Scenario) EmitJSON() []byte {
	buf, err := json.MarshalIndent(sc, "", "  ")
	if err != nil {
		// Scenario contains only marshalable types; this is unreachable.
		panic(err)
	}
	return append(buf, '\n')
}

// Summary is the one-line header reports print.
func (sc *Scenario) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s base, %d stations", sc.Name, sc.Topology.Base, sc.Topology.Stations)
	if sc.Topology.Base == "large" {
		fmt.Fprintf(&b, " / %d channels", sc.Topology.Channels)
	}
	fmt.Fprintf(&b, ", %d bps, mac=%s, transport=%s, %v+%v run",
		sc.Topology.BitRate, sc.Topology.MAC, sc.Traffic.Transport,
		sc.Run.Warmup, sc.Run.Duration)
	return b.String()
}
