// Package tcp implements a Transmission Control Protocol faithful to
// the paper's era and sufficient for its §4.1 analysis: sliding-window
// byte-stream transfer with per-segment retransmission, a receiver
// window, the MSS option, and — the knob E3 turns — either a fixed
// retransmission timeout or the adaptive estimator ("Fortunately, many
// implementations of TCP dynamically adjust their timeout values") with
// Karn's algorithm and exponential backoff (Karn being the same Phil
// Karn whose KA9Q code the paper builds on).
package tcp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"packetradio/internal/ip"
)

// Flag bits.
const (
	FlagFIN = 0x01
	FlagSYN = 0x02
	FlagRST = 0x04
	FlagPSH = 0x08
	FlagACK = 0x10
)

// HeaderLen is the option-less header size.
const HeaderLen = 20

var (
	errShort    = errors.New("tcp: truncated segment")
	errChecksum = errors.New("tcp: bad checksum")
)

// Segment is a parsed TCP segment. MSS is nonzero when the SYN carried
// the maximum-segment-size option.
type Segment struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	MSS              uint16
	Payload          []byte
}

func (s *Segment) has(f uint8) bool { return s.Flags&f != 0 }

func (s *Segment) String() string {
	fl := ""
	for _, f := range []struct {
		bit  uint8
		name string
	}{{FlagSYN, "S"}, {FlagFIN, "F"}, {FlagRST, "R"}, {FlagPSH, "P"}, {FlagACK, "."}} {
		if s.has(f.bit) {
			fl += f.name
		}
	}
	return fmt.Sprintf("tcp %d>%d [%s] seq=%d ack=%d win=%d len=%d",
		s.SrcPort, s.DstPort, fl, s.Seq, s.Ack, s.Window, len(s.Payload))
}

func pseudoChecksum(src, dst ip.Addr, seg []byte) uint16 {
	ph := make([]byte, 12+len(seg))
	copy(ph[0:4], src[:])
	copy(ph[4:8], dst[:])
	ph[9] = ip.ProtoTCP
	binary.BigEndian.PutUint16(ph[10:], uint16(len(seg)))
	copy(ph[12:], seg)
	return ip.Checksum(ph)
}

// Marshal renders the segment with pseudo-header checksum.
func (s *Segment) Marshal(src, dst ip.Addr) []byte {
	optLen := 0
	if s.MSS != 0 {
		optLen = 4
	}
	hlen := HeaderLen + optLen
	buf := make([]byte, hlen+len(s.Payload))
	binary.BigEndian.PutUint16(buf[0:], s.SrcPort)
	binary.BigEndian.PutUint16(buf[2:], s.DstPort)
	binary.BigEndian.PutUint32(buf[4:], s.Seq)
	binary.BigEndian.PutUint32(buf[8:], s.Ack)
	buf[12] = byte(hlen/4) << 4
	buf[13] = s.Flags
	binary.BigEndian.PutUint16(buf[14:], s.Window)
	if s.MSS != 0 {
		buf[20] = 2 // kind: MSS
		buf[21] = 4 // length
		binary.BigEndian.PutUint16(buf[22:], s.MSS)
	}
	copy(buf[hlen:], s.Payload)
	cs := pseudoChecksum(src, dst, buf)
	binary.BigEndian.PutUint16(buf[16:], cs)
	return buf
}

// Unmarshal parses and checksums a segment.
func Unmarshal(src, dst ip.Addr, buf []byte) (*Segment, error) {
	if len(buf) < HeaderLen {
		return nil, errShort
	}
	if pseudoChecksum(src, dst, buf) != 0 {
		return nil, errChecksum
	}
	hlen := int(buf[12]>>4) * 4
	if hlen < HeaderLen || hlen > len(buf) {
		return nil, errShort
	}
	s := &Segment{
		SrcPort: binary.BigEndian.Uint16(buf[0:]),
		DstPort: binary.BigEndian.Uint16(buf[2:]),
		Seq:     binary.BigEndian.Uint32(buf[4:]),
		Ack:     binary.BigEndian.Uint32(buf[8:]),
		Flags:   buf[13],
		Window:  binary.BigEndian.Uint16(buf[14:]),
		Payload: buf[hlen:],
	}
	// Scan options (only MSS is understood).
	opts := buf[HeaderLen:hlen]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // NOP
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				opts = nil
				break
			}
			if opts[0] == 2 && opts[1] == 4 {
				s.MSS = binary.BigEndian.Uint16(opts[2:])
			}
			opts = opts[opts[1]:]
		}
	}
	return s, nil
}

// Sequence-space comparisons (RFC 793 modular arithmetic).
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqMax(a, b uint32) uint32 {
	if seqLT(a, b) {
		return b
	}
	return a
}
