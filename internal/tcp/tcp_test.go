package tcp

import (
	"bytes"
	"testing"
	"time"

	"packetradio/internal/ip"
	"packetradio/internal/ipstack"
	"packetradio/internal/netif"
	"packetradio/internal/sim"
)

// pipeIf is a point-to-point test interface with settable one-way
// delay and a drop hook, so retransmission behaviour is exactly
// controllable.
type pipeIf struct {
	name  string
	mtu   int
	sched *sim.Scheduler
	peer  *ipstack.Stack
	delay time.Duration
	drop  func(pkt *ip.Packet) bool
	stats netif.Stats
	sent  uint64
}

func (p *pipeIf) Name() string        { return p.name }
func (p *pipeIf) MTU() int            { return p.mtu }
func (p *pipeIf) Up() bool            { return true }
func (p *pipeIf) Init() error         { return nil }
func (p *pipeIf) Stats() *netif.Stats { return &p.stats }
func (p *pipeIf) Output(pkt *ip.Packet, _ ip.Addr) error {
	p.sent++
	if p.drop != nil && p.drop(pkt) {
		return nil
	}
	buf, err := pkt.Marshal()
	if err != nil {
		return err
	}
	p.sched.After(p.delay, func() { p.peer.Input(buf, "pipe0") })
	return nil
}

// pair is two connected hosts with TCP layers.
type pair struct {
	sched    *sim.Scheduler
	a, b     *ipstack.Stack
	ta, tb   *Proto
	ifA, ifB *pipeIf
}

func newPair(t *testing.T, delay time.Duration) *pair {
	t.Helper()
	s := sim.NewScheduler(1)
	pa := &pair{sched: s}
	pa.a = ipstack.New(s, "a")
	pa.b = ipstack.New(s, "b")
	pa.ifA = &pipeIf{name: "pipe0", mtu: 1500, sched: s, peer: pa.b, delay: delay}
	pa.ifB = &pipeIf{name: "pipe0", mtu: 1500, sched: s, peer: pa.a, delay: delay}
	pa.a.AddInterface(pa.ifA, ip.MustAddr("10.0.0.1"), ip.MaskClassC)
	pa.b.AddInterface(pa.ifB, ip.MustAddr("10.0.0.2"), ip.MaskClassC)
	pa.ta = New(pa.a)
	pa.tb = New(pa.b)
	return pa
}

// echoServer accepts connections and records received bytes.
type sink struct {
	buf    bytes.Buffer
	conns  []*Conn
	eof    bool
	closed bool
}

func (k *sink) accept(c *Conn) {
	k.conns = append(k.conns, c)
	c.OnData = func(p []byte) { k.buf.Write(p) }
	c.OnPeerClose = func() { k.eof = true }
	c.OnClose = func(error) { k.closed = true }
}

func TestConnectTransferClose(t *testing.T) {
	p := newPair(t, 5*time.Millisecond)
	var srv sink
	if _, err := p.tb.Listen(23, srv.accept); err != nil {
		t.Fatal(err)
	}
	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	connected := false
	var closeErr error
	closedSeen := false
	c.OnConnect = func() { connected = true }
	c.OnClose = func(err error) { closeErr = err; closedSeen = true }

	p.sched.RunFor(time.Second)
	if !connected || c.State() != StateEstablished {
		t.Fatalf("not connected: state=%v", c.State())
	}

	msg := bytes.Repeat([]byte("packet radio to the internet! "), 200) // 6 KB
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	p.sched.RunFor(30 * time.Second)
	if !bytes.Equal(srv.buf.Bytes(), msg) {
		t.Fatalf("server received %d bytes, want %d", srv.buf.Len(), len(msg))
	}

	c.Close()
	p.sched.RunFor(time.Second)
	if !srv.eof {
		t.Fatal("server never saw EOF")
	}
	srv.conns[0].Close()
	p.sched.RunFor(2 * time.Minute) // across TIME_WAIT
	if !closedSeen || closeErr != nil {
		t.Fatalf("client close: seen=%v err=%v", closedSeen, closeErr)
	}
	if !srv.closed {
		t.Fatal("server conn never fully closed")
	}
	if len(p.ta.Conns()) != 0 || len(p.tb.Conns()) != 0 {
		t.Fatalf("connection table leak: %d/%d", len(p.ta.Conns()), len(p.tb.Conns()))
	}
}

func TestConnectionRefused(t *testing.T) {
	p := newPair(t, time.Millisecond)
	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 99)
	var got error
	c.OnClose = func(err error) { got = err }
	p.sched.RunFor(time.Second)
	if got != ErrRefused {
		t.Fatalf("err = %v, want ErrRefused", got)
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	p := newPair(t, 5*time.Millisecond)
	var srv sink
	p.tb.Listen(23, srv.accept)

	// Drop the 3rd and 7th TCP data segments once each.
	dataSegs := 0
	dropped := map[int]bool{}
	p.ifA.drop = func(pkt *ip.Packet) bool {
		if pkt.Proto != ip.ProtoTCP || len(pkt.Payload) <= HeaderLen {
			return false
		}
		dataSegs++
		if (dataSegs == 3 || dataSegs == 7) && !dropped[dataSegs] {
			dropped[dataSegs] = true
			return true
		}
		return false
	}

	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	msg := bytes.Repeat([]byte("x"), 5000)
	c.OnConnect = func() { c.Send(msg) }
	p.sched.RunFor(5 * time.Minute)
	if !bytes.Equal(srv.buf.Bytes(), msg) {
		t.Fatalf("received %d/%d bytes after loss", srv.buf.Len(), len(msg))
	}
	if c.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
}

func TestOutOfOrderReassembly(t *testing.T) {
	p := newPair(t, time.Millisecond)
	var srv sink
	p.tb.Listen(23, srv.accept)

	// Delay exactly one mid-stream data segment by 200 ms so later
	// segments arrive first.
	held := false
	p.ifA.drop = func(pkt *ip.Packet) bool {
		if pkt.Proto != ip.ProtoTCP || len(pkt.Payload) <= HeaderLen {
			return false
		}
		if !held && len(srv.buf.Bytes()) > 1000 {
			held = true
			clone := pkt.Clone()
			buf, _ := clone.Marshal()
			p.sched.After(200*time.Millisecond, func() { p.b.Input(buf, "pipe0") })
			return true
		}
		return false
	}
	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	msg := make([]byte, 8000)
	for i := range msg {
		msg[i] = byte(i)
	}
	c.OnConnect = func() { c.Send(msg) }
	p.sched.RunFor(5 * time.Minute)
	if !bytes.Equal(srv.buf.Bytes(), msg) {
		t.Fatalf("stream corrupted by reordering: got %d bytes", srv.buf.Len())
	}
}

func TestAdaptiveRTOLearnsLongRTT(t *testing.T) {
	// One-way delay 2s -> RTT 4s, far above the 3s initial RTO: the
	// adaptive sender retransmits early on, then learns and stops.
	p := newPair(t, 2*time.Second)
	var srv sink
	p.tb.Listen(23, srv.accept)
	p.ta.DefaultConfig = Config{Mode: RTOAdaptive}

	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	msg := bytes.Repeat([]byte("y"), 20000)
	c.OnConnect = func() { c.Send(msg) }
	p.sched.RunFor(10 * time.Minute)
	if !bytes.Equal(srv.buf.Bytes(), msg) {
		t.Fatalf("transfer incomplete: %d/%d", srv.buf.Len(), len(msg))
	}
	if c.Stats.SRTT < 3*time.Second || c.Stats.SRTT > 6*time.Second {
		t.Fatalf("SRTT = %v, want ~4s", c.Stats.SRTT)
	}
	if c.Stats.CurrentRTO < 4*time.Second {
		t.Fatalf("RTO = %v, should have adapted above the RTT", c.Stats.CurrentRTO)
	}
	// Early timeouts allowed, but learning must cap them well below
	// the fixed-RTO pathology.
	if srv.conns[0].Stats.DupBytes > uint64(len(msg))/2 {
		t.Fatalf("adaptive mode wasted %d dup bytes", srv.conns[0].Stats.DupBytes)
	}
}

func TestFixedRTOBelowRTTWastesBandwidth(t *testing.T) {
	// The §4.1 pathology: fixed 1.5s RTO against a 4s RTT path.
	p := newPair(t, 2*time.Second)
	var srv sink
	p.tb.Listen(23, srv.accept)
	p.ta.DefaultConfig = Config{Mode: RTOFixed, FixedRTO: 1500 * time.Millisecond, MaxRetries: 100}

	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	msg := bytes.Repeat([]byte("z"), 4000)
	c.OnConnect = func() { c.Send(msg) }
	p.sched.RunFor(10 * time.Minute)
	if !bytes.Equal(srv.buf.Bytes(), msg) {
		t.Fatalf("transfer incomplete: %d/%d", srv.buf.Len(), len(msg))
	}
	if c.Stats.Retransmits == 0 {
		t.Fatal("fixed short RTO should retransmit")
	}
	if srv.conns[0].Stats.DupBytes == 0 {
		t.Fatal("no duplicate bytes seen by receiver despite spurious retransmits")
	}
}

func TestAdaptiveBeatsFixedOnWaste(t *testing.T) {
	run := func(cfg Config) (dupBytes uint64) {
		p := newPair(t, 2*time.Second)
		var srv sink
		p.tb.Listen(23, srv.accept)
		p.ta.DefaultConfig = cfg
		c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
		msg := bytes.Repeat([]byte("w"), 10000)
		c.OnConnect = func() { c.Send(msg) }
		p.sched.RunFor(15 * time.Minute)
		if !bytes.Equal(srv.buf.Bytes(), msg) {
			t.Fatalf("transfer incomplete under %+v", cfg)
		}
		return srv.conns[0].Stats.DupBytes
	}
	fixed := run(Config{Mode: RTOFixed, FixedRTO: 1500 * time.Millisecond, MaxRetries: 100})
	adaptive := run(Config{Mode: RTOAdaptive})
	if adaptive >= fixed {
		t.Fatalf("adaptive dup bytes (%d) not less than fixed (%d)", adaptive, fixed)
	}
}

func TestKarnBackoffDuringBlackhole(t *testing.T) {
	p := newPair(t, 10*time.Millisecond)
	var srv sink
	p.tb.Listen(23, srv.accept)
	p.ta.DefaultConfig = Config{Mode: RTOAdaptive, MaxRetries: 50}

	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	black := false
	p.ifA.drop = func(pkt *ip.Packet) bool { return black && pkt.Proto == ip.ProtoTCP }
	c.OnConnect = func() {
		black = true
		c.Send(bytes.Repeat([]byte("k"), 500))
		// Restore the path after 90 s of blackhole.
		p.sched.After(90*time.Second, func() { black = false })
	}
	p.sched.RunFor(30 * time.Second)
	if c.Stats.CurrentRTO < 8*time.Second {
		t.Fatalf("RTO = %v after repeated timeouts, want exponential backoff", c.Stats.CurrentRTO)
	}
	p.sched.RunFor(15 * time.Minute)
	if srv.buf.Len() != 500 {
		t.Fatalf("transfer did not complete after blackhole: %d", srv.buf.Len())
	}
	if c.State() != StateEstablished {
		t.Fatalf("state = %v", c.State())
	}
}

func TestMaxRetriesTimesOut(t *testing.T) {
	p := newPair(t, time.Millisecond)
	var srv sink
	p.tb.Listen(23, srv.accept)
	p.ta.DefaultConfig = Config{Mode: RTOAdaptive, MaxRetries: 3, InitialRTO: 100 * time.Millisecond}
	p.ifA.drop = func(pkt *ip.Packet) bool { return pkt.Proto == ip.ProtoTCP }
	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	var got error
	c.OnClose = func(err error) { got = err }
	p.sched.RunFor(5 * time.Minute)
	if got != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", got)
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	p := newPair(t, 500*time.Millisecond)
	var srv sink
	p.tb.DefaultConfig = Config{WindowBytes: 1024} // small advertised window
	p.tb.Listen(23, srv.accept)
	// Track the largest inflight the sender ever has.
	maxInflight := 0
	p.ifA.drop = func(pkt *ip.Packet) bool {
		for _, c := range p.ta.Conns() {
			inflight := int(c.sndNxt - c.sndUna)
			if inflight > maxInflight {
				maxInflight = inflight
			}
		}
		return false
	}
	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	c.OnConnect = func() { c.Send(bytes.Repeat([]byte("v"), 50000)) }
	p.sched.RunFor(10 * time.Minute)
	if srv.buf.Len() != 50000 {
		t.Fatalf("transfer incomplete: %d", srv.buf.Len())
	}
	if maxInflight > 1024+1 {
		t.Fatalf("inflight %d exceeded advertised window 1024", maxInflight)
	}
}

func TestMSSRespected(t *testing.T) {
	p := newPair(t, time.Millisecond)
	var srv sink
	p.tb.DefaultConfig = Config{MSS: 216} // radio-side MSS
	p.tb.Listen(23, srv.accept)
	maxSeg := 0
	p.ifA.drop = func(pkt *ip.Packet) bool {
		if pkt.Proto == ip.ProtoTCP && len(pkt.Payload) > HeaderLen {
			if n := len(pkt.Payload) - HeaderLen; n > maxSeg {
				maxSeg = n
			}
		}
		return false
	}
	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	c.OnConnect = func() { c.Send(make([]byte, 5000)) }
	p.sched.RunFor(time.Minute)
	if srv.buf.Len() != 5000 {
		t.Fatalf("transfer incomplete: %d", srv.buf.Len())
	}
	if maxSeg > 216 {
		t.Fatalf("segment of %d bytes exceeds peer MSS 216", maxSeg)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	p := newPair(t, 5*time.Millisecond)
	var fromA bytes.Buffer
	var serverConn *Conn
	p.tb.Listen(23, func(c *Conn) {
		serverConn = c
		c.OnData = func(b []byte) { fromA.Write(b) }
		c.Send(bytes.Repeat([]byte("S"), 3000))
	})
	var fromB bytes.Buffer
	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	c.OnData = func(b []byte) { fromB.Write(b) }
	c.OnConnect = func() { c.Send(bytes.Repeat([]byte("C"), 3000)) }
	p.sched.RunFor(time.Minute)
	if fromA.Len() != 3000 || fromB.Len() != 3000 {
		t.Fatalf("bidirectional: %d/%d", fromA.Len(), fromB.Len())
	}
	_ = serverConn
}

func TestHalfCloseServerKeepsSending(t *testing.T) {
	p := newPair(t, 5*time.Millisecond)
	var srv sink
	var sc *Conn
	p.tb.Listen(23, func(c *Conn) {
		sc = c
		srv.accept(c)
		c.OnPeerClose = func() {
			srv.eof = true
			// Client closed its direction; we still respond.
			c.Send([]byte("late response"))
			c.Close()
		}
	})
	var fromB bytes.Buffer
	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	c.OnData = func(b []byte) { fromB.Write(b) }
	c.OnConnect = func() {
		c.Send([]byte("request"))
		c.Close()
	}
	p.sched.RunFor(2 * time.Minute)
	if srv.buf.String() != "request" {
		t.Fatalf("server got %q", srv.buf.String())
	}
	if fromB.String() != "late response" {
		t.Fatalf("client got %q after half close", fromB.String())
	}
	if sc.State() != StateClosed && sc.State() != StateTimeWait {
		// Either side may hold TIME_WAIT depending on close order.
		t.Fatalf("server state = %v", sc.State())
	}
}

func TestAbortResetsPeer(t *testing.T) {
	p := newPair(t, 5*time.Millisecond)
	var srv sink
	var srvErr error
	p.tb.Listen(23, func(c *Conn) {
		srv.accept(c)
		c.OnClose = func(err error) { srvErr = err }
	})
	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	c.OnConnect = func() {
		c.Send([]byte("then gone"))
		p.sched.After(time.Second, c.Abort)
	}
	p.sched.RunFor(time.Minute)
	if srvErr != ErrReset {
		t.Fatalf("server err = %v, want ErrReset", srvErr)
	}
}

func TestListenPortConflict(t *testing.T) {
	p := newPair(t, time.Millisecond)
	if _, err := p.tb.Listen(23, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.tb.Listen(23, nil); err == nil {
		t.Fatal("double Listen succeeded")
	}
}

func TestSlowStartLimitsInitialBurst(t *testing.T) {
	p := newPair(t, 500*time.Millisecond)
	var srv sink
	p.tb.Listen(23, srv.accept)
	p.ta.DefaultConfig = Config{Mode: RTOAdaptive, SlowStart: true, WindowBytes: 8192}

	// Count data segments in the first RTT.
	var firstBurst int
	var burstDone bool
	p.ifA.drop = func(pkt *ip.Packet) bool {
		if !burstDone && pkt.Proto == ip.ProtoTCP && len(pkt.Payload) > HeaderLen {
			firstBurst++
		}
		return false
	}
	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	c.OnConnect = func() {
		c.Send(make([]byte, 20000))
		p.sched.After(900*time.Millisecond, func() { burstDone = true })
	}
	p.sched.RunFor(5 * time.Minute)
	if srv.buf.Len() != 20000 {
		t.Fatalf("transfer incomplete: %d", srv.buf.Len())
	}
	if firstBurst > 2 {
		t.Fatalf("slow start sent %d segments in first RTT, want <=2", firstBurst)
	}
}

func TestSegmentStringAndStates(t *testing.T) {
	s := &Segment{SrcPort: 1, DstPort: 2, Flags: FlagSYN | FlagACK, Seq: 5, Ack: 6, Window: 7}
	if s.String() != "tcp 1>2 [S.] seq=5 ack=6 win=7 len=0" {
		t.Fatalf("String() = %q", s.String())
	}
	if StateEstablished.String() != "ESTABLISHED" || State(99).String() != "UNKNOWN" {
		t.Fatal("state strings")
	}
}

func TestSegmentChecksumRejectsCorruption(t *testing.T) {
	src, dst := ip.MustAddr("1.1.1.1"), ip.MustAddr("2.2.2.2")
	s := &Segment{SrcPort: 10, DstPort: 20, Seq: 1, Ack: 2, Flags: FlagACK, Window: 100, Payload: []byte("data")}
	buf := s.Marshal(src, dst)
	if _, err := Unmarshal(src, dst, buf); err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0xFF
	if _, err := Unmarshal(src, dst, buf); err == nil {
		t.Fatal("corrupted segment accepted")
	}
	// Wrong pseudo-header (misdelivered packet) must also fail.
	if _, err := Unmarshal(src, ip.MustAddr("3.3.3.3"), s.Marshal(src, dst)); err == nil {
		t.Fatal("segment accepted with wrong pseudo-header")
	}
}

func TestMSSOptionRoundTrip(t *testing.T) {
	src, dst := ip.MustAddr("1.1.1.1"), ip.MustAddr("2.2.2.2")
	s := &Segment{SrcPort: 1, DstPort: 2, Flags: FlagSYN, MSS: 216}
	got, err := Unmarshal(src, dst, s.Marshal(src, dst))
	if err != nil {
		t.Fatal(err)
	}
	if got.MSS != 216 {
		t.Fatalf("MSS = %d", got.MSS)
	}
}

func TestLostHandshakeAckRecovered(t *testing.T) {
	// Drop the client's final handshake ACK once: the server
	// retransmits SYN|ACK and the established client must re-ACK it,
	// or the connection deadlocks until N2 death (a bug found via a
	// seed-dependent radio collision in the integration suite).
	p := newPair(t, 10*time.Millisecond)
	var srv sink
	p.tb.Listen(23, srv.accept)
	dropped := false
	p.ifA.drop = func(pkt *ip.Packet) bool {
		if pkt.Proto != ip.ProtoTCP || dropped {
			return false
		}
		seg, err := Unmarshal(pkt.Src, pkt.Dst, pkt.Payload)
		if err != nil {
			return false
		}
		// The bare ACK completing the handshake.
		if seg.Flags == FlagACK && len(seg.Payload) == 0 && seg.Ack != 0 && seg.Seq != 0 && len(srv.conns) == 0 {
			dropped = true
			return true
		}
		return false
	}
	c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
	c.OnConnect = func() { c.Send([]byte("after the storm")) }
	p.sched.RunFor(2 * time.Minute)
	if !dropped {
		t.Fatal("test did not exercise the drop")
	}
	if srv.buf.String() != "after the storm" {
		t.Fatalf("server got %q; handshake never recovered", srv.buf.String())
	}
}
