package tcp

import (
	"errors"
	"fmt"
	"time"

	"packetradio/internal/ip"
	"packetradio/internal/ipstack"
	"packetradio/internal/sim"
)

// RTOMode selects the retransmission-timer policy — the axis of the
// paper's §4.1 discussion.
type RTOMode int

const (
	// RTOAdaptive estimates round-trip time with RFC 793 smoothing,
	// applies Karn's sampling rule, and backs the timer off
	// exponentially on loss. "Fortunately, many implementations of TCP
	// dynamically adjust their timeout values. Hence, when the system
	// on the Ethernet side learns the correct timeout value, the
	// frequency of unnecessary packet retransmissions is reduced."
	RTOAdaptive RTOMode = iota
	// RTOFixed retransmits on a constant interval with no learning and
	// no backoff — the naive Ethernet-era implementation whose
	// behaviour across the gateway §4.1 describes: "the system on the
	// Ethernet side initially retransmits packets several times before
	// a response makes it back ... wasted bandwidth."
	RTOFixed
)

// Config tunes one connection.
type Config struct {
	Mode       RTOMode
	FixedRTO   time.Duration // RTOFixed interval; default 1.5 s
	InitialRTO time.Duration // adaptive pre-sample timeout; default 3 s
	MinRTO     time.Duration // default 1 s (the slow-tick floor)
	MaxRTO     time.Duration // default 64 s
	MaxRetries int           // give up after this many timeouts; default 12

	// WindowBytes is the advertised receive window and also the send
	// buffer unit; default 2048, the 4.3BSD-era socket buffer.
	WindowBytes int
	// MSS forced; 0 derives 536 (RFC 879 default). End hosts on the
	// radio side set 216 (AX.25 MTU 256 − 40).
	MSS int
	// FastRetransmit enables triple-duplicate-ACK recovery (a
	// then-brand-new Van Jacobson idea; off by default in 1988).
	FastRetransmit bool
	// SlowStart enables a Tahoe-style congestion window (ablation
	// extension; off by default to match pre-VJ stacks).
	SlowStart bool
}

// WithDefaults returns the configuration with unset fields filled in —
// the effective values a connection will run with. The socket layer
// sizes its buffers from this.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.FixedRTO <= 0 {
		c.FixedRTO = 1500 * time.Millisecond
	}
	if c.InitialRTO <= 0 {
		c.InitialRTO = 3 * time.Second
	}
	if c.MinRTO <= 0 {
		c.MinRTO = time.Second
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 64 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 12
	}
	if c.WindowBytes <= 0 {
		c.WindowBytes = 2048
	}
	if c.MSS <= 0 {
		c.MSS = 536
	}
	return c
}

// ProtoStats counts layer-wide events.
type ProtoStats struct {
	SegsIn        uint64
	SegsOut       uint64
	BadChecksum   uint64
	RSTsOut       uint64
	NoPort        uint64
	Accepts       uint64
	Connects      uint64
	ListenRefused uint64 // SYNs refused by a listener's OnSyn gate
	Persists      uint64 // zero-window probes sent across all connections
}

type connKey struct {
	localAddr  ip.Addr
	localPort  uint16
	remoteAddr ip.Addr
	remotePort uint16
}

// Listener accepts inbound connections on a port.
type Listener struct {
	Port   uint16
	Accept func(*Conn) // invoked at establishment
	Config Config      // config applied to accepted connections

	// OnSyn, when non-nil, is consulted for each inbound SYN before a
	// connection is created; returning false refuses it with RST. The
	// socket layer enforces its listen backlog here.
	OnSyn func() bool
	// OnSynDone, when non-nil, fires once per connection this listener
	// spawned, when its handshake either completes (established=true,
	// just before Accept) or fails (established=false).
	OnSynDone func(established bool)

	proto *Proto
}

// Close stops accepting. Idempotent, and a no-op if another listener
// has since bound the port.
func (l *Listener) Close() {
	if l.proto.listeners[l.Port] == l {
		delete(l.proto.listeners, l.Port)
	}
}

// Proto is a host's TCP layer.
type Proto struct {
	// DefaultConfig is copied into connections that do not supply one.
	DefaultConfig Config

	Stats ProtoStats

	stack     *ipstack.Stack
	sched     *sim.Scheduler
	conns     map[connKey]*Conn
	listeners map[uint16]*Listener
	nextPort  uint16
}

// New attaches a TCP layer to stack.
func New(stack *ipstack.Stack) *Proto {
	p := &Proto{
		stack:     stack,
		sched:     stack.Sched,
		conns:     make(map[connKey]*Conn),
		listeners: make(map[uint16]*Listener),
		nextPort:  1024,
	}
	stack.RegisterProto(ip.ProtoTCP, p.input)
	return p
}

// ErrPortInUse reports a Listen on an occupied port.
var ErrPortInUse = errors.New("tcp: port in use")

// Listen installs a listener; accept runs when a connection reaches
// ESTABLISHED.
func (p *Proto) Listen(port uint16, accept func(*Conn)) (*Listener, error) {
	if _, ok := p.listeners[port]; ok {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	l := &Listener{Port: port, Accept: accept, Config: p.DefaultConfig, proto: p}
	p.listeners[port] = l
	return l, nil
}

// Dial opens a connection to dst:port using the proto's DefaultConfig.
func (p *Proto) Dial(dst ip.Addr, port uint16) *Conn {
	return p.DialConfig(dst, port, p.DefaultConfig)
}

// DialConfig opens a connection with an explicit configuration.
func (p *Proto) DialConfig(dst ip.Addr, port uint16, cfg Config) *Conn {
	local := p.sourceFor(dst)
	lport := p.allocPort()
	c := newConn(p, connKey{local, lport, dst, port}, cfg, true)
	p.conns[c.key] = c
	c.connect()
	return c
}

func (p *Proto) allocPort() uint16 {
	for {
		port := p.nextPort
		p.nextPort++
		if p.nextPort == 0 {
			p.nextPort = 1024
		}
		inUse := false
		for k := range p.conns {
			if k.localPort == port {
				inUse = true
				break
			}
		}
		if !inUse {
			return port
		}
	}
}

// sourceFor picks the local address facing dst.
func (p *Proto) sourceFor(dst ip.Addr) ip.Addr {
	if ent, err := p.stack.Routes.Lookup(dst); err == nil {
		if a, _, ok := p.stack.IfAddr(ent.IfName); ok {
			return a
		}
	}
	return p.stack.Addr()
}

// Conns exposes live connections (monitoring).
func (p *Proto) Conns() map[connKey]*Conn { return p.conns }

func (p *Proto) input(pkt *ip.Packet, ifName string) {
	seg, err := Unmarshal(pkt.Src, pkt.Dst, pkt.Payload)
	if err != nil {
		p.Stats.BadChecksum++
		return
	}
	p.Stats.SegsIn++
	key := connKey{pkt.Dst, seg.DstPort, pkt.Src, seg.SrcPort}
	if c, ok := p.conns[key]; ok {
		c.segment(seg)
		return
	}
	// New connection? Only a bare SYN to a listening port qualifies.
	if seg.has(FlagSYN) && !seg.has(FlagACK) {
		if l, ok := p.listeners[seg.DstPort]; ok {
			if l.OnSyn != nil && !l.OnSyn() {
				// Backlog full (or listener refusing): answer RST so
				// the client fails fast with ECONNREFUSED rather than
				// retrying a SYN we will never service.
				p.Stats.ListenRefused++
				p.sendRST(key, seg)
				return
			}
			c := newConn(p, key, l.Config, false)
			c.listener = l
			c.synPending = true
			p.conns[key] = c
			c.passiveOpen(seg)
			return
		}
	}
	p.Stats.NoPort++
	p.sendRST(key, seg)
}

// sendRST answers a segment for which no connection exists.
func (p *Proto) sendRST(key connKey, seg *Segment) {
	if seg.has(FlagRST) {
		return
	}
	rst := &Segment{SrcPort: key.localPort, DstPort: key.remotePort, Flags: FlagRST}
	if seg.has(FlagACK) {
		rst.Seq = seg.Ack
	} else {
		rst.Flags |= FlagACK
		rst.Ack = seg.Seq + uint32(len(seg.Payload))
		if seg.has(FlagSYN) {
			rst.Ack++
		}
	}
	p.Stats.RSTsOut++
	p.transmit(key, rst)
}

func (p *Proto) transmit(key connKey, seg *Segment) {
	p.Stats.SegsOut++
	buf := seg.Marshal(key.localAddr, key.remoteAddr)
	_ = p.stack.Send(ip.ProtoTCP, key.localAddr, key.remoteAddr, buf, 0, 0)
}

func (p *Proto) remove(c *Conn) { delete(p.conns, c.key) }
