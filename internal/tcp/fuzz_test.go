package tcp

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"packetradio/internal/ip"
)

// Property: under random loss, duplication and reordering, the TCP
// stream is delivered exactly, in order, or the connection reports a
// timeout — never silent corruption. Exercised across seeds, loss
// rates and both RTO policies.
func TestTCPStreamIntegrityUnderChaos(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		for _, mode := range []RTOMode{RTOAdaptive, RTOFixed} {
			seed, mode := seed, mode
			name := fmt.Sprintf("seed%d_mode%d", seed, mode)
			t.Run(name, func(t *testing.T) {
				p := newPair(t, 20*time.Millisecond)
				p.sched.Rand().Int63n(int64(seed) + 1) // perturb the stream per subtest
				cfg := Config{Mode: mode, MaxRetries: 60}
				if mode == RTOFixed {
					cfg.FixedRTO = 2 * time.Second
				}
				p.ta.DefaultConfig = cfg
				p.tb.DefaultConfig = cfg

				rng := p.sched.Rand()
				chaos := func(pkt *ip.Packet) bool {
					if pkt.Proto != ip.ProtoTCP {
						return false
					}
					switch rng.Intn(10) {
					case 0: // drop (10%)
						return true
					case 1: // duplicate (10%)
						buf, err := pkt.Marshal()
						if err == nil {
							p.sched.After(5*time.Millisecond, func() { p.b.Input(buf, "pipe0") })
						}
						return false
					case 2: // delay/reorder (10%)
						buf, err := pkt.Marshal()
						if err == nil {
							p.sched.After(300*time.Millisecond, func() { p.b.Input(buf, "pipe0") })
						}
						return true
					}
					return false
				}
				p.ifA.drop = chaos

				var srv sink
				p.tb.Listen(23, srv.accept)
				want := make([]byte, 20000)
				rng.Read(want)
				c := p.ta.Dial(ip.MustAddr("10.0.0.2"), 23)
				c.OnConnect = func() { c.Send(want) }
				var clientErr error
				gotErr := false
				c.OnClose = func(err error) { clientErr = err; gotErr = true }

				p.sched.RunFor(2 * time.Hour)
				got := srv.buf.Bytes()
				if gotErr && clientErr != nil {
					// A reported failure is acceptable under chaos, but
					// the delivered prefix must still be clean.
					if !bytes.HasPrefix(want, got) {
						t.Fatalf("corrupt prefix after %v (%d bytes)", clientErr, len(got))
					}
					return
				}
				if !bytes.Equal(got, want) {
					i := 0
					for i < len(got) && i < len(want) && got[i] == want[i] {
						i++
					}
					t.Fatalf("stream corrupted at byte %d (got %d/%d bytes)", i, len(got), len(want))
				}
			})
		}
	}
}

// Property: simultaneous open (both sides dial each other) converges
// to one connection without corruption.
func TestTCPSimultaneousOpen(t *testing.T) {
	p := newPair(t, 10*time.Millisecond)
	// Force the same port pair from both directions by dialing and
	// then cross-wiring: a dials b's listener while b dials a's.
	var aBuf, bBuf bytes.Buffer
	p.ta.Listen(100, func(c *Conn) { c.OnData = func(x []byte) { aBuf.Write(x) } })
	p.tb.Listen(200, func(c *Conn) { c.OnData = func(x []byte) { bBuf.Write(x) } })
	c1 := p.ta.Dial(ip.MustAddr("10.0.0.2"), 200)
	c2 := p.tb.Dial(ip.MustAddr("10.0.0.1"), 100)
	c1.OnConnect = func() { c1.Send([]byte("from a")) }
	c2.OnConnect = func() { c2.Send([]byte("from b")) }
	p.sched.RunFor(time.Minute)
	if aBuf.String() != "from b" || bBuf.String() != "from a" {
		t.Fatalf("cross connections: a got %q, b got %q", aBuf.String(), bBuf.String())
	}
}
