package tcp

import (
	"errors"
	"time"

	"packetradio/internal/sim"
)

// State is a TCP connection state (RFC 793 names).
type State int

const (
	StateClosed State = iota
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
)

var stateNames = [...]string{
	"CLOSED", "SYN_SENT", "SYN_RCVD", "ESTABLISHED", "FIN_WAIT_1",
	"FIN_WAIT_2", "CLOSE_WAIT", "CLOSING", "LAST_ACK", "TIME_WAIT",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "UNKNOWN"
}

// Connection errors.
var (
	ErrRefused = errors.New("tcp: connection refused")
	ErrReset   = errors.New("tcp: connection reset by peer")
	ErrTimeout = errors.New("tcp: connection timed out")
	ErrClosed  = errors.New("tcp: connection closed")
)

// MSL is the maximum segment lifetime used for TIME_WAIT (2*MSL).
const MSL = 15 * time.Second

// ConnStats counts per-connection events; E3 reads these.
type ConnStats struct {
	SegsSent    uint64
	SegsRcvd    uint64
	BytesSent   uint64
	BytesRcvd   uint64
	Retransmits uint64
	Timeouts    uint64
	DupSegments uint64 // received segments wholly or partly already seen
	DupBytes    uint64 // received payload bytes that were duplicates
	DupAcks     uint64
	FastRexmits uint64
	Persists    uint64 // zero-window probes forced past a closed peer window
	RTTSamples  uint64
	LastRTT     time.Duration
	SRTT        time.Duration
	CurrentRTO  time.Duration
}

// Conn is one TCP connection. All methods and callbacks run on the
// simulation event loop.
type Conn struct {
	// OnConnect fires when the connection reaches ESTABLISHED
	// (active opens only; passive opens get the listener callback).
	OnConnect func()
	// OnData delivers in-sequence payload bytes.
	OnData func([]byte)
	// OnPeerClose fires when the peer's FIN is received (EOF).
	OnPeerClose func()
	// OnClose fires exactly once when the connection is fully down;
	// err is nil for a clean close.
	OnClose func(error)
	// OnAcked fires when the peer acknowledges new data, i.e. when
	// send-buffer space is freed. The socket layer pumps its send
	// queue from here.
	OnAcked func()
	// WindowFunc, when non-nil, supplies the receive window to
	// advertise (bytes). The socket layer points it at the free space
	// in its receive sockbuf, which is what turns a slow reader into
	// sender backpressure.
	WindowFunc func() int

	Stats ConnStats

	proto      *Proto
	key        connKey
	cfg        Config
	active     bool
	listener   *Listener
	synPending bool // passive handshake not yet resolved (OnSynDone owed)
	state      State
	err        error
	closed     bool
	lastAdvWnd uint16

	// Send state.
	iss      uint32
	sndUna   uint32
	sndNxt   uint32
	sndWnd   int
	sendBuf  []byte // stream bytes from sndUna onward
	finQd    bool
	finSent  bool
	finSeq   uint32
	finAcked bool
	peerMSS  int

	// Congestion (optional Tahoe slow start).
	cwnd     int
	ssthresh int

	// RTO machinery.
	rtoBase  time.Duration // learned (adaptive) base
	backoff  uint
	timing   bool
	timedSeq uint32
	timedAt  sim.Time
	rexmt    *sim.Event
	retries  int
	dupAcks  int

	// Receive state.
	irs    uint32
	rcvNxt uint32
	ooo    map[uint32][]byte

	timewait *sim.Event
}

const maxOOOSegments = 32

func newConn(p *Proto, key connKey, cfg Config, active bool) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		proto:    p,
		key:      key,
		cfg:      cfg,
		active:   active,
		state:    StateClosed,
		peerMSS:  536,
		ooo:      make(map[uint32][]byte),
		cwnd:     cfg.MSS,
		ssthresh: 65535,
	}
	c.Stats.CurrentRTO = c.currentRTO()
	return c
}

// State reports the connection state.
func (c *Conn) State() State { return c.state }

// Err reports why the connection died, nil for clean closes.
func (c *Conn) Err() error { return c.err }

// LocalAddr / RemoteAddr / ports.
func (c *Conn) LocalPort() uint16  { return c.key.localPort }
func (c *Conn) RemotePort() uint16 { return c.key.remotePort }

// Pending reports unacknowledged plus unsent bytes.
func (c *Conn) Pending() int { return len(c.sendBuf) }

// Config returns the effective configuration.
func (c *Conn) Config() Config { return c.cfg }

// --- Open ---------------------------------------------------------------

func (c *Conn) connect() {
	c.iss = c.proto.sched.Rand().Uint32()
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.state = StateSynSent
	c.proto.Stats.Connects++
	// Time the initial SYN only; sendSYN must never re-arm timing for
	// a retransmission (Karn's rule), or an old SYN's ACK would yield
	// a bogus short sample that locks the RTO below the path RTT.
	if c.cfg.Mode == RTOAdaptive {
		c.timing, c.timedSeq, c.timedAt = true, c.iss, c.proto.sched.Now()
	}
	c.sendSYN(false)
	c.startRexmt()
}

func (c *Conn) passiveOpen(seg *Segment) {
	c.irs = seg.Seq
	c.rcvNxt = seg.Seq + 1
	if seg.MSS != 0 {
		c.peerMSS = int(seg.MSS)
	}
	c.sndWnd = int(seg.Window)
	c.iss = c.proto.sched.Rand().Uint32()
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.state = StateSynRcvd
	c.sendSYN(true)
	c.startRexmt()
}

func (c *Conn) sendSYN(withAck bool) {
	seg := &Segment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.iss, Flags: FlagSYN,
		Window: c.advertisedWindow(), MSS: uint16(c.cfg.MSS),
	}
	if withAck {
		seg.Flags |= FlagACK
		seg.Ack = c.rcvNxt
	}
	c.Stats.SegsSent++
	c.proto.transmit(c.key, seg)
}

func (c *Conn) advertisedWindow() uint16 {
	w := c.windowNow()
	c.lastAdvWnd = w
	return w
}

func (c *Conn) windowNow() uint16 {
	w := c.cfg.WindowBytes
	if c.WindowFunc != nil {
		w = c.WindowFunc()
		if w < 0 {
			w = 0
		}
	}
	if w > 65535 {
		w = 65535
	}
	return uint16(w)
}

// NotifyWindowOpen tells the connection that the receive-buffer owner
// drained data. If the window has grown materially since the last
// advertisement (or reopened from zero), an ACK carrying the new
// window goes out so a stalled sender resumes — 4.3BSD's window-update
// path out of sorwakeup/tcp_output.
func (c *Conn) NotifyWindowOpen() {
	switch c.state {
	case StateEstablished, StateFinWait1, StateFinWait2:
	default:
		return
	}
	w := c.windowNow()
	growth := int(w) - int(c.lastAdvWnd)
	if (c.lastAdvWnd == 0 && w > 0) || growth >= 2*c.sendMSS() {
		c.sendAck()
	}
}

func (c *Conn) onEstablished() {
	c.state = StateEstablished
	if c.active {
		if c.OnConnect != nil {
			c.OnConnect()
		}
	} else {
		c.proto.Stats.Accepts++
		if c.synPending {
			c.synPending = false
			if c.listener != nil && c.listener.OnSynDone != nil {
				c.listener.OnSynDone(true)
			}
		}
		if c.listener != nil && c.listener.Accept != nil {
			c.listener.Accept(c)
		}
	}
}

// --- API ----------------------------------------------------------------

// Send queues stream data.
func (c *Conn) Send(p []byte) error {
	switch c.state {
	case StateEstablished, StateCloseWait, StateSynSent, StateSynRcvd:
		if c.finQd {
			return ErrClosed
		}
		c.sendBuf = append(c.sendBuf, p...)
		c.trySend()
		return nil
	default:
		return ErrClosed
	}
}

// Close sends FIN after all queued data.
func (c *Conn) Close() {
	switch c.state {
	case StateEstablished, StateCloseWait, StateSynRcvd:
		if !c.finQd {
			c.finQd = true
			c.trySend()
		}
	case StateSynSent:
		c.teardown(nil)
	}
}

// Abort resets the connection immediately.
func (c *Conn) Abort() {
	if c.state == StateClosed {
		return
	}
	rst := &Segment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.sndNxt, Flags: FlagRST | FlagACK, Ack: c.rcvNxt,
	}
	c.proto.Stats.RSTsOut++
	c.proto.transmit(c.key, rst)
	c.teardown(ErrClosed)
}

// --- Timers -------------------------------------------------------------

func (c *Conn) currentRTO() time.Duration {
	var base time.Duration
	switch c.cfg.Mode {
	case RTOFixed:
		return c.cfg.FixedRTO // no learning, no backoff
	default:
		if c.rtoBase > 0 {
			base = c.rtoBase
		} else {
			base = c.cfg.InitialRTO
		}
	}
	rto := base << c.backoff
	if rto > c.cfg.MaxRTO {
		rto = c.cfg.MaxRTO
	}
	if rto < c.cfg.MinRTO {
		rto = c.cfg.MinRTO
	}
	return rto
}

func (c *Conn) startRexmt() {
	c.stopRexmt()
	rto := c.currentRTO()
	c.Stats.CurrentRTO = rto
	c.rexmt = c.proto.sched.After(rto, c.rexmtExpired)
}

func (c *Conn) stopRexmt() {
	if c.rexmt != nil {
		c.proto.sched.Cancel(c.rexmt)
		c.rexmt = nil
	}
}

func (c *Conn) rexmtExpired() {
	c.rexmt = nil
	c.Stats.Timeouts++
	c.retries++
	if c.retries > c.cfg.MaxRetries {
		c.teardown(ErrTimeout)
		return
	}
	// Karn's rule: a retransmission invalidates any in-flight timing.
	c.timing = false
	if c.cfg.Mode == RTOAdaptive {
		if c.backoff < 6 {
			c.backoff++
		}
	}
	if c.cfg.SlowStart {
		inflight := int(c.sndNxt - c.sndUna)
		half := inflight / 2
		if half < 2*c.cfg.MSS {
			half = 2 * c.cfg.MSS
		}
		c.ssthresh = half
		c.cwnd = c.cfg.MSS
	}
	c.retransmit()
	c.startRexmt()
}

// retransmit resends the earliest outstanding item.
func (c *Conn) retransmit() {
	c.Stats.Retransmits++
	switch c.state {
	case StateSynSent:
		c.sendSYN(false)
		return
	case StateSynRcvd:
		c.sendSYN(true)
		return
	}
	outstanding := int(c.sndNxt - c.sndUna)
	if c.finSent && outstanding > 0 {
		outstanding-- // FIN occupies one sequence number
	}
	if outstanding > 0 {
		n := outstanding
		if n > c.sendMSS() {
			n = c.sendMSS()
		}
		c.sendData(c.sndUna, c.sendBuf[:n], false)
		return
	}
	if c.finSent && !c.finAcked {
		c.sendFIN()
		return
	}
	if len(c.sendBuf) > 0 {
		// Nothing outstanding but data waiting: the peer's window is
		// closed. Force one byte past it as a window probe; the
		// receiver buffers and ACKs it, which both resets our retry
		// count and carries the reopened window when the application
		// finally reads.
		c.sendData(c.sndNxt, c.sendBuf[:1], false)
		c.sndNxt++
		c.Stats.BytesSent++
		c.Stats.Persists++
		c.proto.Stats.Persists++
	}
}

// --- RTT estimation -----------------------------------------------------

func (c *Conn) sampleRTT(sample time.Duration) {
	c.Stats.RTTSamples++
	c.Stats.LastRTT = sample
	if c.Stats.SRTT == 0 {
		c.Stats.SRTT = sample
	} else {
		// RFC 793 smoothing with alpha = 7/8.
		c.Stats.SRTT = (7*c.Stats.SRTT + sample) / 8
	}
	// beta = 2.
	c.rtoBase = 2 * c.Stats.SRTT
	if c.rtoBase < c.cfg.MinRTO {
		c.rtoBase = c.cfg.MinRTO
	}
	if c.rtoBase > c.cfg.MaxRTO {
		c.rtoBase = c.cfg.MaxRTO
	}
	c.Stats.CurrentRTO = c.currentRTO()
}

// --- Segment processing --------------------------------------------------

func (c *Conn) segment(seg *Segment) {
	c.Stats.SegsRcvd++
	switch c.state {
	case StateSynSent:
		c.segSynSent(seg)
		return
	case StateSynRcvd:
		if seg.has(FlagRST) {
			c.teardown(ErrReset)
			return
		}
		if seg.has(FlagACK) && seg.Ack == c.sndNxt {
			c.sndUna = seg.Ack
			c.sndWnd = int(seg.Window)
			c.retries = 0
			c.stopRexmt()
			c.onEstablished()
			// Fall through: the ACK may carry data.
		} else if seg.has(FlagSYN) && !seg.has(FlagACK) {
			// Duplicate SYN: re-answer.
			c.sendSYN(true)
			return
		} else {
			return
		}
	case StateClosed:
		return
	}

	if seg.has(FlagRST) {
		c.teardown(ErrReset)
		return
	}
	if seg.has(FlagSYN) {
		if seqLT(c.irs, seg.Seq) {
			// New SYN inside an existing connection: protocol violation.
			c.teardown(ErrReset)
			return
		}
		// A retransmitted SYN or SYN|ACK means our handshake ACK was
		// lost (common on a colliding radio channel): re-acknowledge,
		// or the peer stays in SYN_RCVD until its retries run out.
		c.sendAck()
		return
	}
	c.processAck(seg)
	if c.state == StateClosed {
		return
	}
	c.processData(seg)
}

func (c *Conn) segSynSent(seg *Segment) {
	if seg.has(FlagRST) {
		if seg.has(FlagACK) && seg.Ack == c.sndNxt {
			c.teardown(ErrRefused)
		}
		return
	}
	if seg.has(FlagSYN) && seg.has(FlagACK) {
		if seg.Ack != c.sndNxt {
			return // bogus
		}
		c.irs = seg.Seq
		c.rcvNxt = seg.Seq + 1
		c.sndUna = seg.Ack
		if seg.MSS != 0 {
			c.peerMSS = int(seg.MSS)
		}
		c.sndWnd = int(seg.Window)
		c.retries = 0
		c.stopRexmt()
		if c.timing && c.cfg.Mode == RTOAdaptive {
			c.sampleRTT(c.proto.sched.Now().Sub(c.timedAt))
			c.timing = false
		}
		c.onEstablished()
		c.sendAck()
		c.trySend()
		return
	}
	if seg.has(FlagSYN) {
		// Simultaneous open.
		c.irs = seg.Seq
		c.rcvNxt = seg.Seq + 1
		if seg.MSS != 0 {
			c.peerMSS = int(seg.MSS)
		}
		c.state = StateSynRcvd
		c.sendSYN(true)
		c.startRexmt()
	}
}

func (c *Conn) processAck(seg *Segment) {
	if !seg.has(FlagACK) {
		return
	}
	if seqLT(c.sndNxt, seg.Ack) {
		// Acks something we never sent: ignore (peer will resync).
		c.sendAck()
		return
	}
	if seqLT(seg.Ack, c.sndUna) {
		// Stale ACK from a duplicated or reordered segment (e.g. a
		// retransmitted SYN|ACK): RFC 793 says ignore. Processing it
		// would regress snd.una and corrupt the send buffer.
		return
	}
	acked := int(seg.Ack - c.sndUna)
	if acked > 0 {
		dataAcked := acked
		if c.finSent && seg.Ack == c.finSeq+1 {
			c.finAcked = true
			dataAcked--
		}
		if dataAcked > len(c.sendBuf) {
			dataAcked = len(c.sendBuf)
		}
		c.sendBuf = c.sendBuf[dataAcked:]
		c.sndUna = seg.Ack
		c.retries = 0
		c.dupAcks = 0
		if c.timing && seqLT(c.timedSeq, seg.Ack) {
			if c.cfg.Mode == RTOAdaptive {
				c.sampleRTT(c.proto.sched.Now().Sub(c.timedAt))
			}
			c.timing = false
		}
		c.backoff = 0 // Karn: keep backed-off RTO until new data is acked
		if c.cfg.SlowStart {
			if c.cwnd < c.ssthresh {
				c.cwnd += c.cfg.MSS
			} else {
				c.cwnd += c.cfg.MSS * c.cfg.MSS / c.cwnd
			}
		}
		if c.sndUna == c.sndNxt {
			c.stopRexmt()
		} else {
			c.startRexmt()
		}
		if c.finAcked {
			switch c.state {
			case StateFinWait1:
				c.state = StateFinWait2
			case StateClosing:
				c.enterTimeWait()
			case StateLastAck:
				c.teardown(nil)
				return
			}
		}
		c.sndWnd = int(seg.Window)
		if dataAcked > 0 && c.OnAcked != nil {
			c.OnAcked()
		}
		c.trySend()
		return
	}
	// acked == 0: duplicate or window update.
	c.sndWnd = int(seg.Window)
	if len(seg.Payload) == 0 && c.sndUna != c.sndNxt {
		c.Stats.DupAcks++
		c.dupAcks++
		if c.cfg.FastRetransmit && c.dupAcks == 3 {
			c.Stats.FastRexmits++
			c.retransmit()
		}
	}
	c.trySend()
}

func (c *Conn) processData(seg *Segment) {
	plen := len(seg.Payload)
	fin := seg.has(FlagFIN)
	if plen == 0 && !fin {
		return
	}
	seq := seg.Seq
	end := seq + uint32(plen)
	payload := seg.Payload

	if seqLT(c.rcvNxt, seq) {
		// Future data: buffer (without FIN; peer retransmits it) and
		// send a duplicate ACK so the sender learns about the gap.
		if plen > 0 && len(c.ooo) < maxOOOSegments {
			c.ooo[seq] = append([]byte(nil), payload...)
		}
		c.sendAck()
		return
	}
	finNew := fin && !seqLT(end, c.rcvNxt) // FIN at or beyond rcvNxt
	if seqLEQ(end, c.rcvNxt) && (plen > 0 || fin) {
		if !finNew || plen > 0 {
			// Entirely old data (a duplicate crossing the link — the
			// §4.1 wasted bandwidth E3 measures).
			if plen > 0 {
				c.Stats.DupSegments++
				c.Stats.DupBytes += uint64(plen)
			}
		}
		if !finNew {
			c.sendAck()
			return
		}
	}
	if plen > 0 && seqLT(seq, c.rcvNxt) {
		// Partial overlap: trim the stale head.
		skip := int(c.rcvNxt - seq)
		c.Stats.DupSegments++
		c.Stats.DupBytes += uint64(skip)
		payload = payload[skip:]
		plen = len(payload)
		seq = c.rcvNxt
	}
	if plen > 0 && seq == c.rcvNxt {
		c.deliver(payload)
		// Drain any buffered out-of-order continuation.
		for {
			next, ok := c.ooo[c.rcvNxt]
			if !ok {
				break
			}
			delete(c.ooo, c.rcvNxt)
			c.deliver(next)
		}
	}
	if finNew && c.rcvNxt == end {
		c.rcvNxt++
		c.peerFIN()
	}
	c.sendAck()
}

func (c *Conn) deliver(p []byte) {
	c.rcvNxt += uint32(len(p))
	c.Stats.BytesRcvd += uint64(len(p))
	if c.OnData != nil {
		c.OnData(p)
	}
}

func (c *Conn) peerFIN() {
	switch c.state {
	case StateEstablished:
		c.state = StateCloseWait
		if c.OnPeerClose != nil {
			c.OnPeerClose()
		}
	case StateFinWait1:
		if c.finAcked {
			c.enterTimeWait()
		} else {
			c.state = StateClosing
		}
		if c.OnPeerClose != nil {
			c.OnPeerClose()
		}
	case StateFinWait2:
		c.enterTimeWait()
		if c.OnPeerClose != nil {
			c.OnPeerClose()
		}
	}
}

// --- Transmission --------------------------------------------------------

func (c *Conn) sendMSS() int {
	mss := c.cfg.MSS
	if c.peerMSS > 0 && c.peerMSS < mss {
		mss = c.peerMSS
	}
	return mss
}

func (c *Conn) effectiveWindow() int {
	w := c.sndWnd
	if c.cfg.SlowStart && c.cwnd < w {
		w = c.cwnd
	}
	return w
}

func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateCloseWait &&
		c.state != StateFinWait1 && c.state != StateLastAck {
		return
	}
	mss := c.sendMSS()
	for {
		inflight := int(c.sndNxt - c.sndUna)
		if c.finSent {
			inflight--
		}
		unsent := len(c.sendBuf) - inflight
		if unsent <= 0 {
			break
		}
		room := c.effectiveWindow() - inflight
		if room <= 0 {
			// Window closed with data pending: keep the timer running
			// as a probe so a lost window update cannot deadlock us.
			if c.rexmt == nil {
				c.startRexmt()
			}
			return
		}
		n := unsent
		if n > mss {
			n = mss
		}
		if n > room {
			n = room
		}
		payload := c.sendBuf[inflight : inflight+n]
		c.sendData(c.sndNxt, payload, true)
		if !c.timing && c.cfg.Mode == RTOAdaptive {
			c.timing, c.timedSeq, c.timedAt = true, c.sndNxt, c.proto.sched.Now()
		}
		c.sndNxt += uint32(n)
		c.Stats.BytesSent += uint64(n)
		if c.rexmt == nil {
			c.startRexmt()
		}
	}
	// All data sent; emit FIN if a close is pending.
	if c.finQd && !c.finSent {
		inflight := int(c.sndNxt - c.sndUna)
		if inflight == len(c.sendBuf) {
			c.finSeq = c.sndNxt
			c.sendFIN()
			c.sndNxt++
			c.finSent = true
			switch c.state {
			case StateEstablished:
				c.state = StateFinWait1
			case StateCloseWait:
				c.state = StateLastAck
			}
			if c.rexmt == nil {
				c.startRexmt()
			}
		}
	}
}

func (c *Conn) sendData(seq uint32, payload []byte, _ bool) {
	seg := &Segment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: seq, Ack: c.rcvNxt, Flags: FlagACK | FlagPSH,
		Window: c.advertisedWindow(), Payload: payload,
	}
	c.Stats.SegsSent++
	c.proto.transmit(c.key, seg)
}

func (c *Conn) sendFIN() {
	seg := &Segment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.finSeq, Ack: c.rcvNxt, Flags: FlagACK | FlagFIN,
		Window: c.advertisedWindow(),
	}
	c.Stats.SegsSent++
	c.proto.transmit(c.key, seg)
}

func (c *Conn) sendAck() {
	seg := &Segment{
		SrcPort: c.key.localPort, DstPort: c.key.remotePort,
		Seq: c.sndNxt, Ack: c.rcvNxt, Flags: FlagACK,
		Window: c.advertisedWindow(),
	}
	c.Stats.SegsSent++
	c.proto.transmit(c.key, seg)
}

// --- Teardown -------------------------------------------------------------

func (c *Conn) enterTimeWait() {
	c.state = StateTimeWait
	c.stopRexmt()
	if c.timewait != nil {
		c.proto.sched.Cancel(c.timewait)
	}
	c.timewait = c.proto.sched.After(2*MSL, func() { c.teardown(nil) })
}

func (c *Conn) teardown(err error) {
	if c.closed {
		return
	}
	c.closed = true
	c.err = err
	c.state = StateClosed
	if c.synPending {
		c.synPending = false
		if c.listener != nil && c.listener.OnSynDone != nil {
			c.listener.OnSynDone(false)
		}
	}
	c.stopRexmt()
	if c.timewait != nil {
		c.proto.sched.Cancel(c.timewait)
		c.timewait = nil
	}
	c.proto.remove(c)
	if c.OnClose != nil {
		c.OnClose(err)
	}
}
