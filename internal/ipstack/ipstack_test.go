package ipstack

import (
	"testing"
	"time"

	"packetradio/internal/icmp"
	"packetradio/internal/ip"
	"packetradio/internal/netif"
	"packetradio/internal/sim"
)

// wire is a minimal test interface connecting two stacks directly.
type wire struct {
	name  string
	mtu   int
	sched *sim.Scheduler
	peer  *Stack
	drop  func(*ip.Packet) bool
	stats netif.Stats
}

func (w *wire) Name() string        { return w.name }
func (w *wire) MTU() int            { return w.mtu }
func (w *wire) Up() bool            { return true }
func (w *wire) Init() error         { return nil }
func (w *wire) Stats() *netif.Stats { return &w.stats }
func (w *wire) Output(pkt *ip.Packet, _ ip.Addr) error {
	if w.drop != nil && w.drop(pkt) {
		return nil
	}
	buf, err := pkt.Marshal()
	if err != nil {
		return err
	}
	w.sched.At(w.sched.Now(), func() { w.peer.Input(buf, "wire0") })
	return nil
}

func pairUp(t *testing.T, mtu int) (*sim.Scheduler, *Stack, *Stack, *wire, *wire) {
	t.Helper()
	s := sim.NewScheduler(1)
	a := New(s, "a")
	b := New(s, "b")
	wa := &wire{name: "wire0", mtu: mtu, sched: s, peer: b}
	wb := &wire{name: "wire0", mtu: mtu, sched: s, peer: a}
	a.AddInterface(wa, ip.MustAddr("10.0.0.1"), ip.MaskClassC)
	b.AddInterface(wb, ip.MustAddr("10.0.0.2"), ip.MaskClassC)
	return s, a, b, wa, wb
}

func TestLocalLoopback(t *testing.T) {
	s, a, _, _, _ := pairUp(t, 1500)
	got := false
	a.RegisterProto(99, func(pkt *ip.Packet, ifName string) {
		got = pkt.Src == a.Addr() && pkt.Dst == a.Addr() && ifName == "lo0"
	})
	if err := a.Send(99, ip.Addr{}, a.Addr(), []byte("self"), 0, 0); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Second)
	if !got {
		t.Fatal("loopback delivery failed")
	}
}

func TestEchoAcrossWire(t *testing.T) {
	s, a, _, _, _ := pairUp(t, 1500)
	var rtt time.Duration
	a.Ping(ip.MustAddr("10.0.0.2"), 32, func(_ uint16, d time.Duration, _ ip.Addr) { rtt = d })
	s.RunFor(time.Second)
	if rtt < 0 || a.Stats.ICMPIn == 0 {
		t.Fatal("no echo reply")
	}
}

func TestProtoUnreachable(t *testing.T) {
	s, a, b, _, _ := pairUp(t, 1500)
	a.Send(123, ip.Addr{}, ip.MustAddr("10.0.0.2"), []byte("x"), 0, 0)
	s.RunFor(time.Second)
	if b.Stats.NoProto != 1 {
		t.Fatalf("NoProto = %d", b.Stats.NoProto)
	}
	if a.Stats.ICMPIn == 0 {
		t.Fatal("no protocol-unreachable error came back")
	}
}

func TestProtoErrorHandlerInvoked(t *testing.T) {
	s, a, b, _, _ := pairUp(t, 1500)
	_ = b
	var gotDst ip.Addr
	var gotType uint8
	a.RegisterProtoError(123, func(dst ip.Addr, m *icmp.Message) {
		gotDst = dst
		gotType = m.Type
	})
	a.Send(123, ip.Addr{}, ip.MustAddr("10.0.0.2"), []byte("x"), 0, 0)
	s.RunFor(time.Second)
	if gotDst != ip.MustAddr("10.0.0.2") || gotType != icmp.TypeDestUnreachable {
		t.Fatalf("error handler: dst=%v type=%d", gotDst, gotType)
	}
}

func TestSendFragmentsAtSource(t *testing.T) {
	s, a, b, _, _ := pairUp(t, 256)
	var got int
	b.RegisterProto(99, func(pkt *ip.Packet, _ string) { got = len(pkt.Payload) })
	a.Send(99, ip.Addr{}, ip.MustAddr("10.0.0.2"), make([]byte, 1000), 0, 0)
	s.RunFor(time.Minute)
	if got != 1000 {
		t.Fatalf("reassembled %d bytes, want 1000", got)
	}
	if a.Stats.FragsOut == 0 || b.Stats.Reassembled != 1 {
		t.Fatalf("frag stats: out=%d reass=%d", a.Stats.FragsOut, b.Stats.Reassembled)
	}
}

func TestReassemblyTimeoutCleansUp(t *testing.T) {
	s, a, b, wa, _ := pairUp(t, 256)
	_ = a
	// Drop the last fragment so reassembly can never finish.
	frags := 0
	wa.drop = func(pkt *ip.Packet) bool {
		if pkt.FragOff > 0 || pkt.MF {
			frags++
			return !pkt.MF // the last fragment has MF clear
		}
		return false
	}
	a.Send(99, ip.Addr{}, ip.MustAddr("10.0.0.2"), make([]byte, 1000), 0, 0)
	s.RunFor(time.Second)
	if b.reass.PendingCount() != 1 {
		t.Fatalf("pending = %d", b.reass.PendingCount())
	}
	s.RunFor(2 * time.Minute)
	if b.reass.PendingCount() != 0 {
		t.Fatal("reassembly state leaked past timeout")
	}
	if s.Pending() != 0 {
		t.Fatal("expiry timer leaked")
	}
}

// Regression for the event-pool aliasing hazard: after an expiry tick
// fires with nothing pending, the scheduler recycles the event object.
// If the stack kept the stale handle, a recycled event reused by any
// other timer would make scheduleReassemblyExpiry think a tick was
// still pending, and later incomplete datagrams would never expire.
func TestReassemblyExpiryReschedulesAfterRecycledEvent(t *testing.T) {
	s, a, b, wa, _ := pairUp(t, 256)
	dropTail := func(pkt *ip.Packet) bool {
		if pkt.FragOff > 0 || pkt.MF {
			return !pkt.MF
		}
		return false
	}
	wa.drop = dropTail
	a.Send(99, ip.Addr{}, ip.MustAddr("10.0.0.2"), make([]byte, 1000), 0, 0)
	s.RunFor(2 * time.Minute) // first expiry fires, PendingCount()==0
	if b.reass.PendingCount() != 0 {
		t.Fatal("first reassembly did not expire")
	}
	// Occupy the recycled event object with an unrelated live timer.
	ev := s.After(time.Hour, func() {})
	defer s.Cancel(ev)
	// A second incomplete datagram must still get an expiry tick.
	a.Send(99, ip.Addr{}, ip.MustAddr("10.0.0.2"), make([]byte, 1000), 0, 0)
	s.RunFor(time.Second)
	if b.reass.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1", b.reass.PendingCount())
	}
	s.RunFor(2 * time.Minute)
	if b.reass.PendingCount() != 0 {
		t.Fatal("second incomplete datagram never expired: expiry tick was not rescheduled")
	}
}

func TestNoRouteError(t *testing.T) {
	_, a, _, _, _ := pairUp(t, 1500)
	if err := a.Send(99, ip.Addr{}, ip.MustAddr("192.168.9.9"), nil, 0, 0); err == nil {
		t.Fatal("send to unroutable destination succeeded")
	}
}

func TestHostIgnoresTransit(t *testing.T) {
	s, a, b, _, _ := pairUp(t, 1500)
	// a sends to an address that is NOT b but routes via the wire.
	a.Routes.AddNet(ip.MustAddr("10.0.1.0"), ip.MaskClassC, ip.MustAddr("10.0.0.2"), "wire0")
	a.Send(99, ip.Addr{}, ip.MustAddr("10.0.1.5"), []byte("transit"), 0, 0)
	s.RunFor(time.Second)
	if b.Stats.Forwarded != 0 {
		t.Fatal("host forwarded")
	}
	if b.Stats.Received == 0 {
		t.Fatal("packet never arrived at b")
	}
}

func TestBadPacketCounted(t *testing.T) {
	_, a, _, _, _ := pairUp(t, 1500)
	a.Input([]byte{0xFF, 0x00}, "wire0")
	if a.Stats.BadPackets != 1 {
		t.Fatalf("BadPackets = %d", a.Stats.BadPackets)
	}
}

func TestTapObservesDirections(t *testing.T) {
	s, a, _, _, _ := pairUp(t, 1500)
	dirs := map[string]int{}
	a.Tap = func(dir string, pkt *ip.Packet, ifName string) { dirs[dir]++ }
	a.Ping(ip.MustAddr("10.0.0.2"), 8, nil)
	s.RunFor(time.Second)
	if dirs["out"] == 0 || dirs["in"] == 0 {
		t.Fatalf("tap: %v", dirs)
	}
}

func TestICMPHookConsumes(t *testing.T) {
	s, a, b, _, _ := pairUp(t, 1500)
	_ = a
	hooked := 0
	b.ICMPHook = func(pkt *ip.Packet, m *icmp.Message, ifName string) bool {
		hooked++
		return true // consume everything, even echo
	}
	got := false
	a.Ping(ip.MustAddr("10.0.0.2"), 8, func(uint16, time.Duration, ip.Addr) { got = true })
	s.RunFor(time.Second)
	if hooked == 0 {
		t.Fatal("hook never ran")
	}
	if got {
		t.Fatal("hook consumed echo but reply still sent")
	}
}

func TestIfAddrAndInterface(t *testing.T) {
	_, a, _, wa, _ := pairUp(t, 1500)
	addr, mask, ok := a.IfAddr("wire0")
	if !ok || addr != ip.MustAddr("10.0.0.1") || mask != ip.MaskClassC {
		t.Fatalf("IfAddr: %v %v %v", addr, mask, ok)
	}
	ifc, ok := a.Interface("wire0")
	if !ok || ifc != netif.Interface(wa) {
		t.Fatal("Interface lookup")
	}
	if _, ok := a.Interface("nope"); ok {
		t.Fatal("bogus interface found")
	}
}

func TestDirectedBroadcastIsLocal(t *testing.T) {
	s, a, b, _, _ := pairUp(t, 1500)
	_ = a
	got := false
	b.RegisterProto(99, func(pkt *ip.Packet, _ string) { got = true })
	// 10.0.0.255 is the directed broadcast of the /24.
	a.Send(99, ip.Addr{}, ip.MustAddr("10.0.0.255"), []byte("all"), 0, 0)
	s.RunFor(time.Second)
	// a treats it as local (delivers to itself via loopback); this
	// matches hosts accepting their net's directed broadcast.
	_ = got
	if a.Stats.Delivered == 0 && !got {
		t.Fatal("directed broadcast dropped everywhere")
	}
}

func TestRedirectInstallsHostRoute(t *testing.T) {
	// Topology: host A and routers R1, R2 all on one wire-mesh; A
	// routes net 20.0.0.0/24 via R1, but R1 reaches it via R2 on the
	// same interface, so R1 forwards and emits a redirect (§4.2's
	// mechanism for steering traffic to the right regional gateway).
	s := sim.NewScheduler(1)
	a := New(s, "a")
	r1 := New(s, "r1")
	r2 := New(s, "r2")
	r1.Forwarding = true
	r2.Forwarding = true
	a.AcceptRedirects = true

	// A tiny broadcast wire connecting all three stacks.
	stacks := []*Stack{a, r1, r2}
	mkIf := func(self *Stack) *wire {
		w := &wire{name: "wire0", mtu: 1500, sched: s}
		w.drop = func(pkt *ip.Packet) bool {
			buf, err := pkt.Marshal()
			if err != nil {
				return true
			}
			for _, st := range stacks {
				if st != self {
					st := st
					s.At(s.Now(), func() { st.Input(buf, "wire0") })
				}
			}
			return true // we delivered it ourselves
		}
		return w
	}
	a.AddInterface(mkIf(a), ip.MustAddr("10.0.0.1"), ip.MaskClassC)
	r1.AddInterface(mkIf(r1), ip.MustAddr("10.0.0.2"), ip.MaskClassC)
	r2.AddInterface(mkIf(r2), ip.MustAddr("10.0.0.3"), ip.MaskClassC)

	// The distant destination hangs directly off R2 (loop it back).
	dest := ip.MustAddr("20.0.0.5")
	r2.RegisterProto(99, func(*ip.Packet, string) {})
	r2Dest := &wire{name: "stub0", mtu: 1500, sched: s, peer: r2}
	r2.AddInterface(r2Dest, ip.MustAddr("20.0.0.1"), ip.MaskClassC)

	a.Routes.AddNet(ip.MustAddr("20.0.0.0"), ip.MaskClassC, ip.MustAddr("10.0.0.2"), "wire0")
	r1.Routes.AddNet(ip.MustAddr("20.0.0.0"), ip.MaskClassC, ip.MustAddr("10.0.0.3"), "wire0")

	a.Send(99, ip.Addr{}, dest, []byte("x"), 0, 0)
	s.RunFor(time.Second)
	if r1.Stats.RedirectsOut != 1 {
		t.Fatalf("r1 sent %d redirects", r1.Stats.RedirectsOut)
	}
	if a.Stats.RedirectsIn != 1 {
		t.Fatalf("a accepted %d redirects", a.Stats.RedirectsIn)
	}
	// A must now have a host route for dest via R2.
	ent, err := a.Routes.Lookup(dest)
	if err != nil {
		t.Fatal(err)
	}
	if ent.Gateway != ip.MustAddr("10.0.0.3") || ent.Mask != ip.MaskHost {
		t.Fatalf("route after redirect: %v", ent)
	}
	// Subsequent lookups keep resolving to the redirected host route.
	// (The shared test wire is an unaddressed broadcast medium, so
	// asserting on what R1 overhears would be meaningless.)
	ent2, err := a.Routes.Lookup(dest)
	if err != nil || ent2 != ent {
		t.Fatalf("lookup after redirect: %v, %v", ent2, err)
	}
}

func TestRedirectIgnoredByDefaultAndFromStrangers(t *testing.T) {
	s := sim.NewScheduler(1)
	a := New(s, "a")
	w := &wire{name: "wire0", mtu: 1500, sched: s, peer: a}
	a.AddInterface(w, ip.MustAddr("10.0.0.1"), ip.MaskClassC)
	a.Routes.AddNet(ip.MustAddr("20.0.0.0"), ip.MaskClassC, ip.MustAddr("10.0.0.2"), "wire0")

	mkRedirect := func(src ip.Addr) []byte {
		quoted := &ip.Packet{Header: ip.Header{TTL: 30, Proto: 99, Src: ip.MustAddr("10.0.0.1"), Dst: ip.MustAddr("20.0.0.5")}}
		m := icmp.NewError(icmp.TypeRedirect, 1, quoted)
		m.Gateway = ip.MustAddr("10.0.0.9")
		pkt := &ip.Packet{
			Header:  ip.Header{TTL: 30, Proto: ip.ProtoICMP, ID: 7, Src: src, Dst: ip.MustAddr("10.0.0.1")},
			Payload: m.Marshal(),
		}
		buf, _ := pkt.Marshal()
		return buf
	}

	// AcceptRedirects false: ignored.
	a.Input(mkRedirect(ip.MustAddr("10.0.0.2")), "wire0")
	if a.Stats.RedirectsIn != 0 {
		t.Fatal("redirect accepted with AcceptRedirects=false")
	}
	// Enabled, but from a host that is not our gateway for the
	// destination: ignored (anti-spoofing sanity check).
	a.AcceptRedirects = true
	a.Input(mkRedirect(ip.MustAddr("10.0.0.66")), "wire0")
	if a.Stats.RedirectsIn != 0 {
		t.Fatal("redirect accepted from a stranger")
	}
	// From the real gateway: accepted.
	a.Input(mkRedirect(ip.MustAddr("10.0.0.2")), "wire0")
	if a.Stats.RedirectsIn != 1 {
		t.Fatal("legitimate redirect ignored")
	}
}
