// Package ipstack is the miniature 4.3BSD/Ultrix IP engine the paper's
// driver hands packets to ("the driver then adds the encapsulated IP
// packet to the queue of incoming IP packets so that it can be dealt
// with by the existing Ultrix software"): input validation, local
// delivery with reassembly, transport demultiplexing, ICMP, and — when
// Forwarding is enabled, as on the paper's MicroVAX gateway —
// forwarding with TTL handling, fragmentation to the outgoing MTU,
// redirects, and a pluggable forwarding filter used by the §4.3 access
// control table.
package ipstack

import (
	"errors"
	"fmt"
	"time"

	"packetradio/internal/icmp"
	"packetradio/internal/ip"
	"packetradio/internal/netif"
	"packetradio/internal/route"
	"packetradio/internal/sim"
)

// Handler processes a transport-layer segment: the full datagram is
// passed so the transport can see addresses for its pseudo-header.
type Handler func(pkt *ip.Packet, ifName string)

// FilterVerdict is a forwarding filter's decision.
type FilterVerdict int

const (
	VerdictAccept FilterVerdict = iota
	VerdictDrop                 // drop silently
	VerdictReject               // drop and return ICMP admin-prohibited
)

// Filter inspects a packet being forwarded from inIf to outIf.
type Filter func(pkt *ip.Packet, inIf, outIf string) FilterVerdict

// Stats counts stack-level events (a slice of ipstat).
type Stats struct {
	Received     uint64
	BadPackets   uint64
	Delivered    uint64
	Forwarded    uint64
	TTLDrops     uint64
	NoRoute      uint64
	FilterDrops  uint64
	OutRequests  uint64
	FragsOut     uint64
	Reassembled  uint64
	RedirectsOut uint64
	RedirectsIn  uint64
	NoProto      uint64
	EchoReplies  uint64
	ICMPIn       uint64
	ICMPOut      uint64
	FragDrops    uint64 // datagrams unfragmentable for the output MTU
}

type ifEntry struct {
	ifc  netif.Interface
	addr ip.Addr
	mask ip.Mask
}

// Stack is one host's (or gateway's) IP layer.
type Stack struct {
	Hostname string
	Sched    *sim.Scheduler

	// Forwarding enables gatewaying between interfaces (ipforwarding).
	Forwarding bool

	// Routes is the kernel routing table.
	Routes *route.Table

	// Filter, when non-nil, screens every forwarded packet (the §4.3
	// access-control hook).
	Filter Filter

	// ICMPHook, when non-nil, sees every locally delivered ICMP
	// message before standard processing; returning true consumes it.
	// The gateway authorization messages are handled here.
	ICMPHook func(pkt *ip.Packet, m *icmp.Message, ifName string) bool

	// AcceptRedirects lets ICMP redirects install host routes — the
	// mechanism §4.2 suggests for steering traffic to regional
	// gateways ("It is conceivable that something like this could be
	// handled using [ICMP]"). Hosts of the era accepted them; off by
	// default here so tests opt in explicitly.
	AcceptRedirects bool

	// Tap, when non-nil, observes every packet at input, output and
	// forward time ("in", "out", "fwd").
	Tap func(dir string, pkt *ip.Packet, ifName string)

	Stats Stats

	ifs         map[string]*ifEntry
	order       []string
	protos      map[uint8]Handler
	protoOwners map[uint8]any
	protoErrs   map[uint8]func(dst ip.Addr, m *icmp.Message)
	reass       *ip.Reassembler
	reassTick   *sim.Event
	nextID      uint16

	pings map[uint16]*pingCtx
}

// New builds a stack.
func New(sched *sim.Scheduler, hostname string) *Stack {
	return &Stack{
		Hostname:    hostname,
		Sched:       sched,
		Routes:      route.New(),
		ifs:         make(map[string]*ifEntry),
		protos:      make(map[uint8]Handler),
		protoOwners: make(map[uint8]any),
		protoErrs:   make(map[uint8]func(ip.Addr, *icmp.Message)),
		reass:       ip.NewReassembler(),
		pings:       make(map[uint16]*pingCtx),
		nextID:      1,
	}
}

// AddInterface attaches a configured interface and installs the
// connected-network route.
func (s *Stack) AddInterface(ifc netif.Interface, addr ip.Addr, mask ip.Mask) {
	if mask == (ip.Mask{}) {
		mask = ip.ClassMask(addr)
	}
	s.ifs[ifc.Name()] = &ifEntry{ifc: ifc, addr: addr, mask: mask}
	s.order = append(s.order, ifc.Name())
	s.Routes.AddNet(addr, mask, ip.Addr{}, ifc.Name())
}

// Interface returns a registered interface by name.
func (s *Stack) Interface(name string) (netif.Interface, bool) {
	e, ok := s.ifs[name]
	if !ok {
		return nil, false
	}
	return e.ifc, true
}

// IfAddr reports the address of the named interface.
func (s *Stack) IfAddr(name string) (ip.Addr, ip.Mask, bool) {
	e, ok := s.ifs[name]
	if !ok {
		return ip.Addr{}, ip.Mask{}, false
	}
	return e.addr, e.mask, true
}

// IfNames lists the registered interfaces in attachment order —
// daemons that send per-interface traffic (RSPF hellos) iterate this
// so their behaviour is deterministic.
func (s *Stack) IfNames() []string {
	return append([]string(nil), s.order...)
}

// Addr returns the stack's primary address (first interface).
func (s *Stack) Addr() ip.Addr {
	if len(s.order) == 0 {
		return ip.Addr{}
	}
	return s.ifs[s.order[0]].addr
}

// RegisterProto installs the transport handler for an IP protocol.
func (s *Stack) RegisterProto(proto uint8, h Handler) { s.RegisterProtoOwned(proto, h, nil) }

// RegisterProtoOwned installs a transport handler tagged with an
// owner token, so UnregisterProtoOwned can release the slot only if
// it still belongs to that owner (raw sockets use themselves as the
// token; a later transport claiming the protocol must not be torn
// down by a stale close).
func (s *Stack) RegisterProtoOwned(proto uint8, h Handler, owner any) {
	s.protos[proto] = h
	s.protoOwners[proto] = owner
}

// HasProto reports whether a transport handler is registered for the
// protocol — the socket layer's duplicate-raw-bind check.
func (s *Stack) HasProto(proto uint8) bool { _, ok := s.protos[proto]; return ok }

// UnregisterProtoOwned removes the protocol's handler if (and only
// if) owner still holds the slot.
func (s *Stack) UnregisterProtoOwned(proto uint8, owner any) {
	if s.protoOwners[proto] != owner {
		return
	}
	delete(s.protos, proto)
	delete(s.protoOwners, proto)
}

// RegisterProtoError installs a handler for ICMP errors quoting a
// datagram of the given protocol (how TCP learns of unreachables).
func (s *Stack) RegisterProtoError(proto uint8, h func(dst ip.Addr, m *icmp.Message)) {
	s.protoErrs[proto] = h
}

// isLocal reports whether dst is one of our addresses or a broadcast
// we should accept.
func (s *Stack) isLocal(dst ip.Addr) bool {
	if dst.IsBroadcast() || dst == ip.Loopback {
		return true
	}
	for _, e := range s.ifs {
		if dst == e.addr {
			return true
		}
		// Directed broadcast for a connected net.
		bcast := e.addr
		for i := range bcast {
			bcast[i] |= ^e.mask[i]
		}
		if dst == bcast {
			return true
		}
	}
	return false
}

// Input is the driver entry point: a validated-length raw datagram
// received on ifName. Equivalent to ipintr picking packets off the IP
// input queue.
func (s *Stack) Input(buf []byte, ifName string) {
	s.Stats.Received++
	pkt, err := ip.Unmarshal(buf)
	if err != nil {
		s.Stats.BadPackets++
		return
	}
	if s.Tap != nil {
		s.Tap("in", pkt, ifName)
	}
	if s.isLocal(pkt.Dst) {
		s.deliver(pkt, ifName)
		return
	}
	if !s.Forwarding {
		// Hosts silently discard transit traffic.
		return
	}
	s.forward(pkt, ifName)
}

func (s *Stack) deliver(pkt *ip.Packet, ifName string) {
	// Reassemble fragments first.
	if pkt.MF || pkt.FragOff > 0 {
		s.scheduleReassemblyExpiry()
		pkt = s.reass.Add(pkt.Clone(), s.Sched.Now().Duration())
		if pkt == nil {
			return
		}
		s.Stats.Reassembled++
	}
	s.Stats.Delivered++
	if pkt.Proto == ip.ProtoICMP {
		s.icmpInput(pkt, ifName)
		return
	}
	if h, ok := s.protos[pkt.Proto]; ok {
		h(pkt, ifName)
		return
	}
	s.Stats.NoProto++
	s.sendICMPError(icmp.TypeDestUnreachable, icmp.CodeProtoUnreachable, pkt)
}

func (s *Stack) scheduleReassemblyExpiry() {
	if s.reassTick != nil && !s.reassTick.Cancelled() {
		return
	}
	s.reassTick = s.Sched.After(s.reass.Timeout, func() {
		// Clear the handle unconditionally: the scheduler recycles
		// fired events, so holding the stale pointer would alias
		// whatever timer reuses it and block rescheduling forever.
		s.reassTick = nil
		s.reass.Expire(s.Sched.Now().Duration())
		if s.reass.PendingCount() > 0 {
			s.scheduleReassemblyExpiry()
		}
	})
}

func (s *Stack) forward(pkt *ip.Packet, inIf string) {
	if pkt.TTL <= 1 {
		s.Stats.TTLDrops++
		s.sendICMPError(icmp.TypeTimeExceeded, icmp.CodeTTLExceeded, pkt)
		return
	}
	ent, err := s.Routes.Lookup(pkt.Dst)
	if err != nil {
		s.Stats.NoRoute++
		s.sendICMPError(icmp.TypeDestUnreachable, icmp.CodeNetUnreachable, pkt)
		return
	}
	if s.Filter != nil {
		switch s.Filter(pkt, inIf, ent.IfName) {
		case VerdictDrop:
			s.Stats.FilterDrops++
			return
		case VerdictReject:
			s.Stats.FilterDrops++
			s.sendICMPError(icmp.TypeDestUnreachable, icmp.CodeAdminProhibited, pkt)
			return
		}
	}
	fwd := pkt.Clone()
	fwd.TTL--
	// 4.3BSD ip_forward sends a redirect when the packet leaves by the
	// interface it arrived on and the source is on that network — the
	// mechanism §4.2 suggests could steer regional gateway selection.
	if ent.IfName == inIf {
		if e, ok := s.ifs[inIf]; ok && ip.SameNet(pkt.Src, e.addr, e.mask) && !ent.Gateway.IsZero() {
			s.Stats.RedirectsOut++
			m := icmp.NewError(icmp.TypeRedirect, 1, pkt) // host redirect
			m.Gateway = ent.Gateway
			s.sendICMP(pkt.Src, m)
		}
	}
	s.transmit(fwd, ent, "fwd", inIf)
	s.Stats.Forwarded++
}

// transmit routes are resolved; fragment and hand to the driver.
func (s *Stack) transmit(pkt *ip.Packet, ent *route.Entry, dir, ifName string) {
	e, ok := s.ifs[ent.IfName]
	if !ok {
		s.Stats.NoRoute++
		return
	}
	nextHop := pkt.Dst
	if ent.Flags&route.FlagGateway != 0 {
		nextHop = ent.Gateway
	}
	frags, err := ip.Fragment(pkt, e.ifc.MTU())
	if err != nil {
		s.Stats.FragDrops++
		if errors.Is(err, ip.ErrFragmentDF) {
			s.sendICMPError(icmp.TypeDestUnreachable, icmp.CodeFragNeeded, pkt)
		}
		return
	}
	if len(frags) > 1 {
		s.Stats.FragsOut += uint64(len(frags))
	}
	for _, f := range frags {
		if s.Tap != nil {
			s.Tap(dir, f, e.ifc.Name())
		}
		if err := e.ifc.Output(f, nextHop); err != nil {
			e.ifc.Stats().Oerrors++
		}
	}
}

// Send originates a datagram from this host. A zero src selects the
// outgoing interface's address. Local destinations loop back without
// touching a driver.
func (s *Stack) Send(proto uint8, src, dst ip.Addr, payload []byte, ttl uint8, tos uint8) error {
	s.Stats.OutRequests++
	if ttl == 0 {
		ttl = ip.DefaultTTL
	}
	pkt := &ip.Packet{
		Header: ip.Header{
			TOS: tos, ID: s.allocID(), TTL: ttl, Proto: proto, Src: src, Dst: dst,
		},
		Payload: payload,
	}
	if dst.IsBroadcast() {
		// Limited broadcast goes out every interface, never forwarded.
		for _, name := range s.order {
			e := s.ifs[name]
			out := pkt.Clone()
			if out.Src.IsZero() {
				out.Src = e.addr
			}
			if s.Tap != nil {
				s.Tap("out", out, name)
			}
			if err := e.ifc.Output(out, dst); err != nil {
				e.ifc.Stats().Oerrors++
			}
		}
		return nil
	}
	if s.isLocal(dst) {
		if pkt.Src.IsZero() {
			pkt.Src = s.Addr()
		}
		// Loop back through the input path asynchronously, as if it
		// had traversed the software loopback interface.
		buf, err := pkt.Marshal()
		if err != nil {
			return err
		}
		s.Sched.At(s.Sched.Now(), func() { s.Input(buf, "lo0") })
		return nil
	}
	ent, err := s.Routes.Lookup(dst)
	if err != nil {
		return err
	}
	if pkt.Src.IsZero() {
		if e, ok := s.ifs[ent.IfName]; ok {
			pkt.Src = e.addr
		}
	}
	s.transmit(pkt, ent, "out", "")
	return nil
}

// SendVia is the raw-protocol hook: it originates a datagram out the
// named interface without consulting the routing table. dst must be
// on-link (or the limited broadcast) because it is handed to the
// driver as the next hop directly. Routing daemons use this to emit
// per-interface hellos and link-state floods before any routes exist —
// the chicken-and-egg a routed protocol cannot solve through its own
// routing table. The source address is the interface's own.
func (s *Stack) SendVia(ifName string, proto uint8, dst ip.Addr, payload []byte, ttl uint8) error {
	e, ok := s.ifs[ifName]
	if !ok {
		return fmt.Errorf("ipstack: SendVia on unknown interface %q", ifName)
	}
	s.Stats.OutRequests++
	if ttl == 0 {
		ttl = 1 // link-local by default, never forwarded off-net
	}
	pkt := &ip.Packet{
		Header: ip.Header{
			ID: s.allocID(), TTL: ttl, Proto: proto, Src: e.addr, Dst: dst,
		},
		Payload: payload,
	}
	// A synthetic on-link route entry reuses the shared fragmentation
	// and tap path; zero Gateway makes the next hop the destination.
	s.transmit(pkt, &route.Entry{IfName: ifName, Flags: route.FlagUp}, "out", "")
	return nil
}

func (s *Stack) allocID() uint16 {
	id := s.nextID
	s.nextID++
	if s.nextID == 0 {
		s.nextID = 1
	}
	return id
}

// --- ICMP -------------------------------------------------------------

func (s *Stack) icmpInput(pkt *ip.Packet, ifName string) {
	s.Stats.ICMPIn++
	m, err := icmp.Unmarshal(pkt.Payload)
	if err != nil {
		s.Stats.BadPackets++
		return
	}
	if s.ICMPHook != nil && s.ICMPHook(pkt, m, ifName) {
		return
	}
	switch m.Type {
	case icmp.TypeEcho:
		s.Stats.EchoReplies++
		s.sendICMP(pkt.Src, icmp.NewEchoReply(m))
	case icmp.TypeEchoReply:
		s.pingReply(pkt, m)
	case icmp.TypeDestUnreachable, icmp.TypeTimeExceeded:
		if q, ok := icmp.QuotedHeader(m); ok {
			if h, ok := s.protoErrs[q.Proto]; ok {
				h(q.Dst, m)
			}
		}
	case icmp.TypeRedirect:
		if !s.AcceptRedirects || m.Gateway.IsZero() {
			return
		}
		q, ok := icmp.QuotedHeader(m)
		if !ok {
			return
		}
		// Only honor redirects from the gateway we actually used, for
		// a destination we route through it (4.3BSD's sanity checks).
		ent, err := s.Routes.Lookup(q.Dst)
		if err != nil || ent.Gateway != pkt.Src {
			return
		}
		s.Routes.AddHost(q.Dst, m.Gateway, ent.IfName)
		s.Stats.RedirectsIn++
	}
}

// RaiseError lets transports report errors about a received datagram
// (e.g. UDP port unreachable), with the standard suppression rules.
func (s *Stack) RaiseError(typ, code uint8, about *ip.Packet) {
	s.sendICMPError(typ, code, about)
}

// sendICMP originates an ICMP message to dst.
func (s *Stack) sendICMP(dst ip.Addr, m *icmp.Message) {
	s.Stats.ICMPOut++
	if err := s.Send(ip.ProtoICMP, ip.Addr{}, dst, m.Marshal(), 0, 0); err != nil {
		// Unroutable ICMP is silently dropped.
		_ = err
	}
}

// sendICMPError raises an error about a received datagram, applying
// the RFC 1122 suppression rules.
func (s *Stack) sendICMPError(typ, code uint8, about *ip.Packet) {
	if about.FragOff != 0 {
		return // only the first fragment
	}
	if about.Dst.IsBroadcast() || about.Src.IsZero() || about.Src.IsBroadcast() {
		return
	}
	if about.Proto == ip.ProtoICMP {
		if m, err := icmp.Unmarshal(about.Payload); err == nil {
			switch m.Type {
			case icmp.TypeEcho, icmp.TypeEchoReply:
				// Errors about echo are fine.
			default:
				return // never error about an ICMP error
			}
		}
	}
	s.sendICMP(about.Src, icmp.NewError(typ, code, about))
}

// --- Ping helper --------------------------------------------------------

type pingCtx struct {
	sent     map[uint16]sim.Time
	callback func(seq uint16, rtt time.Duration, from ip.Addr)
	open     bool // PingOpen context: survives replies, closed explicitly
}

// Ping sends one echo request to dst with the given payload size; the
// callback fires when (if) the matching reply arrives. Returns the
// id/seq used. The echo context is one-shot: it is released when the
// reply arrives, so long-running simulations (the scale worlds ping
// millions of times) do not exhaust the 16-bit ID space. A reply that
// never comes leaks the id; use PingOpen/ClosePing for long-lived
// probing.
func (s *Stack) Ping(dst ip.Addr, size int, cb func(seq uint16, rtt time.Duration, from ip.Addr)) (id, seq uint16) {
	return s.ping(dst, size, cb, false)
}

// PingOpen is Ping with a persistent echo context: the id stays
// registered — surviving replies and losses — so the caller can keep
// issuing PingSeq follow-ups on it. Release it with ClosePing.
func (s *Stack) PingOpen(dst ip.Addr, size int, cb func(seq uint16, rtt time.Duration, from ip.Addr)) (id, seq uint16) {
	return s.ping(dst, size, cb, true)
}

func (s *Stack) ping(dst ip.Addr, size int, cb func(seq uint16, rtt time.Duration, from ip.Addr), open bool) (id, seq uint16) {
	id = uint16(len(s.pings) + 1)
	for tries := 0; s.pings[id] != nil; tries++ {
		if tries > 1<<16 {
			panic("ipstack: ping id space exhausted (65536 echo contexts outstanding)")
		}
		id++
	}
	ctx := &pingCtx{sent: map[uint16]sim.Time{}, callback: cb, open: open}
	s.pings[id] = ctx
	ctx.sent[0] = s.Sched.Now()
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	s.sendICMP(dst, icmp.NewEcho(id, 0, payload))
	return id, 0
}

// PingSeq sends a follow-up echo on an existing (PingOpen) id.
func (s *Stack) PingSeq(dst ip.Addr, id, seq uint16, size int) {
	ctx := s.pings[id]
	if ctx == nil {
		return
	}
	ctx.sent[seq] = s.Sched.Now()
	payload := make([]byte, size)
	s.sendICMP(dst, icmp.NewEcho(id, seq, payload))
}

// ClosePing releases an echo context created with PingOpen.
func (s *Stack) ClosePing(id uint16) { delete(s.pings, id) }

func (s *Stack) pingReply(pkt *ip.Packet, m *icmp.Message) {
	ctx := s.pings[m.ID]
	if ctx == nil {
		return
	}
	t0, ok := ctx.sent[m.Seq]
	if !ok {
		return
	}
	delete(ctx.sent, m.Seq)
	// One-shot contexts are released before the callback runs, so a
	// callback that immediately pings again may reuse the id.
	if !ctx.open {
		delete(s.pings, m.ID)
	}
	if ctx.callback != nil {
		ctx.callback(m.Seq, s.Sched.Now().Sub(t0), pkt.Src)
	}
}

func (s *Stack) String() string {
	return fmt.Sprintf("stack(%s, %d ifs, fwd=%v)", s.Hostname, len(s.ifs), s.Forwarding)
}
