package ax25

import (
	"testing"
	"testing/quick"
)

func TestNewAddrBasics(t *testing.T) {
	cases := []struct {
		in       string
		call     string
		ssid     uint8
		rendered string
	}{
		{"N7AKR", "N7AKR", 0, "N7AKR"},
		{"KB7DZ-4", "KB7DZ", 4, "KB7DZ-4"},
		{"wa6bev-15", "WA6BEV", 15, "WA6BEV-15"},
		{"K3MC-0", "K3MC", 0, "K3MC"},
		{"QST", "QST", 0, "QST"},
	}
	for _, c := range cases {
		a, err := NewAddr(c.in)
		if err != nil {
			t.Fatalf("NewAddr(%q): %v", c.in, err)
		}
		if a.Callsign() != c.call || a.SSID != c.ssid {
			t.Fatalf("NewAddr(%q) = %v/%d, want %s/%d", c.in, a.Callsign(), a.SSID, c.call, c.ssid)
		}
		if a.String() != c.rendered {
			t.Fatalf("String() = %q, want %q", a.String(), c.rendered)
		}
	}
}

func TestNewAddrRejects(t *testing.T) {
	for _, in := range []string{"", "TOOLONGCALL", "AB CD", "N7AKR-16", "N7AKR--1", "N7AKR-x", "käll"} {
		if _, err := NewAddr(in); err == nil {
			t.Fatalf("NewAddr(%q) succeeded, want error", in)
		}
	}
}

func TestAddrEncodeDecodeRoundTrip(t *testing.T) {
	a := MustAddr("KG7K-7")
	var buf [AddrLen]byte
	a.encode(buf[:], true, false)
	// Every callsign byte must have its extension bit clear.
	for i := 0; i < 6; i++ {
		if buf[i]&1 != 0 {
			t.Fatalf("byte %d has extension bit set", i)
		}
	}
	got, ch, last, err := decodeAddr(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != a || !ch || last {
		t.Fatalf("decode = %v ch=%v last=%v, want %v true false", got, ch, last, a)
	}
	a.encode(buf[:], false, true)
	got, ch, last, err = decodeAddr(buf[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != a || ch || !last {
		t.Fatalf("decode = %v ch=%v last=%v, want %v false true", got, ch, last, a)
	}
}

func TestDecodeAddrShort(t *testing.T) {
	if _, _, _, err := decodeAddr(make([]byte, 6)); err == nil {
		t.Fatal("want error for short address")
	}
}

func TestAddrComparable(t *testing.T) {
	m := map[Addr]int{MustAddr("N7AKR"): 1, MustAddr("N7AKR-1"): 2}
	if m[MustAddr("N7AKR")] != 1 || m[MustAddr("N7AKR-1")] != 2 {
		t.Fatal("Addr does not work as a map key")
	}
	if MustAddr("N7AKR") == MustAddr("N7AKR-1") {
		t.Fatal("SSID must distinguish addresses")
	}
}

func TestQuickAddrRoundTrip(t *testing.T) {
	letters := "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	f := func(seed uint32, n uint8, ssid uint8) bool {
		length := int(n%6) + 1
		call := make([]byte, length)
		x := seed
		for i := range call {
			x = x*1664525 + 1013904223
			call[i] = letters[x%uint32(len(letters))]
		}
		a := Addr{SSID: ssid & 0x0F}
		for i := 0; i < 6; i++ {
			a.Call[i] = ' '
		}
		copy(a.Call[:], call)
		var buf [AddrLen]byte
		a.encode(buf[:], false, false)
		got, _, _, err := decodeAddr(buf[:])
		if err != nil {
			return false
		}
		b, err := NewAddr(a.String())
		return err == nil && got == a && b == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMustAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddr should panic on bad input")
		}
	}()
	MustAddr("not a call!")
}

func TestIsZero(t *testing.T) {
	var a Addr
	if !a.IsZero() {
		t.Fatal("zero Addr should report IsZero")
	}
	if Broadcast.IsZero() {
		t.Fatal("Broadcast should not be zero")
	}
}
