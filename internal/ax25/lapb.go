package ax25

import (
	"errors"
	"time"

	"packetradio/internal/sim"
)

// This file implements AX.25 v2.0 connected mode (the LAPB-derived
// "level 2" protocol): SABM/UA connection establishment, modulo-8 I
// frame sequencing with a sliding window, RR/RNR/REJ supervision, T1
// retransmission with an N2 retry limit, and T3 idle polling. The
// paper's terminal users ride this protocol inside their TNCs ("a
// primitive network layer protocol for use with terminals"), and §2.4's
// application gateway terminates it in user space.

// ConnState enumerates link states.
type ConnState int

const (
	StateDisconnected ConnState = iota
	StateConnecting             // SABM sent, awaiting UA
	StateConnected
	StateDisconnecting // DISC sent, awaiting UA/DM
)

func (s ConnState) String() string {
	switch s {
	case StateDisconnected:
		return "DISCONNECTED"
	case StateConnecting:
		return "CONNECTING"
	case StateConnected:
		return "CONNECTED"
	case StateDisconnecting:
		return "DISCONNECTING"
	}
	return "UNKNOWN"
}

// ConnConfig tunes a connection. The zero value selects defaults
// appropriate for a 1200 bps channel.
type ConnConfig struct {
	T1     time.Duration // retransmission (FRACK) timer; default 8s
	T3     time.Duration // idle link-check timer; default 180s; <0 disables
	N2     int           // max retries; default 10
	Window int           // max outstanding I frames (MAXFRAME), 1-7; default 4
	PacLen int           // max info bytes per I frame; default MaxInfo
}

func (c ConnConfig) withDefaults() ConnConfig {
	if c.T1 <= 0 {
		c.T1 = 8 * time.Second
	}
	if c.T3 == 0 {
		c.T3 = 180 * time.Second
	}
	if c.N2 <= 0 {
		c.N2 = 10
	}
	if c.Window <= 0 || c.Window > 7 {
		c.Window = 4
	}
	if c.PacLen <= 0 || c.PacLen > MaxInfo {
		c.PacLen = MaxInfo
	}
	return c
}

// ConnStats counts protocol events on one connection.
type ConnStats struct {
	SentI, RcvdI   uint64
	Retransmits    uint64
	RejSent        uint64
	RejRcvd        uint64
	T1Expiries     uint64
	OutOfSeq       uint64
	BytesSent      uint64
	BytesReceived  uint64
	LinkFailures   uint64
	PollsAnswered  uint64
	KeepalivePolls uint64
}

// Conn is one AX.25 connected-mode link endpoint. All methods must be
// called from the simulation event loop. Frames arrive via Input
// (dispatched by an Endpoint) and leave via the transmit function the
// Endpoint was built with.
type Conn struct {
	Local, Remote Addr
	Path          []Addr // outbound digipeater path

	// OnState is invoked on every state transition.
	OnState func(ConnState)
	// OnData is invoked for each in-sequence information field.
	OnData func([]byte)

	Stats ConnStats

	cfg   ConnConfig
	sched *sim.Scheduler
	xmit  func(*Frame)
	state ConnState

	vs, va, vr uint8 // send, acknowledged, receive state variables (mod 8)
	sendq      [][]byte
	unacked    [][]byte // info fields sent but not acknowledged, oldest first
	rejSent    bool
	peerBusy   bool
	localBusy  bool
	retries    int

	t1, t3 *sim.Event
	err    error
}

var (
	// ErrConnRefused reports a DM received in answer to our SABM.
	ErrConnRefused = errors.New("ax25: connection refused (DM)")
	// ErrLinkTimeout reports N2 expiries of T1 with no progress.
	ErrLinkTimeout = errors.New("ax25: link timeout (N2 retries exhausted)")
	// ErrConnReset reports an unexpected SABM/DM/FRMR that reset the link.
	ErrConnReset = errors.New("ax25: connection reset by peer")
	// ErrNotConnected reports a Send on a link that is not up.
	ErrNotConnected = errors.New("ax25: not connected")
)

// State reports the current link state.
func (c *Conn) State() ConnState { return c.state }

// Err reports why the link most recently became disconnected, or nil.
func (c *Conn) Err() error { return c.err }

// Pending reports queued-but-unsent plus sent-but-unacknowledged bytes.
func (c *Conn) Pending() int {
	n := 0
	for _, p := range c.sendq {
		n += len(p)
	}
	for _, p := range c.unacked {
		n += len(p)
	}
	return n
}

func (c *Conn) setState(s ConnState) {
	if c.state == s {
		return
	}
	c.state = s
	if c.OnState != nil {
		c.OnState(s)
	}
}

func (c *Conn) reversePath() []Addr {
	if len(c.Path) == 0 {
		return nil
	}
	r := make([]Addr, len(c.Path))
	for i, a := range c.Path {
		r[len(c.Path)-1-i] = a
	}
	return r
}

func (c *Conn) send(f *Frame) {
	if len(c.Path) > 0 {
		f = f.Via(c.Path...)
	}
	c.xmit(f)
}

func (c *Conn) sendCtl(kind Kind, pf, command bool) {
	f := &Frame{Dst: c.Remote, Src: c.Local, Kind: kind, PF: pf, Command: command}
	if kind == KindRR || kind == KindRNR || kind == KindREJ {
		f.NR = c.vr
	}
	c.send(f)
}

func (c *Conn) startT1() {
	c.stopT1()
	c.t1 = c.sched.After(c.cfg.T1, c.t1Expired)
}

func (c *Conn) stopT1() {
	if c.t1 != nil {
		c.sched.Cancel(c.t1)
		c.t1 = nil
	}
}

func (c *Conn) startT3() {
	c.stopT3()
	if c.cfg.T3 > 0 {
		c.t3 = c.sched.After(c.cfg.T3, c.t3Expired)
	}
}

func (c *Conn) stopT3() {
	if c.t3 != nil {
		c.sched.Cancel(c.t3)
		c.t3 = nil
	}
}

// Connect initiates the link (sends SABM).
func (c *Conn) Connect() {
	if c.state != StateDisconnected {
		return
	}
	c.reset()
	c.err = nil
	c.setState(StateConnecting)
	c.retries = 0
	c.sendCtl(KindSABM, true, true)
	c.startT1()
}

// Disconnect initiates an orderly teardown (sends DISC). Queued data
// that has not yet been transmitted is discarded, as in real TNCs.
func (c *Conn) Disconnect() {
	switch c.state {
	case StateConnected, StateConnecting:
		c.setState(StateDisconnecting)
		c.retries = 0
		c.sendCtl(KindDISC, true, true)
		c.startT1()
	case StateDisconnecting, StateDisconnected:
	}
}

// Send queues data for transmission, segmenting into PACLEN-sized I
// frames.
func (c *Conn) Send(data []byte) error {
	if c.state != StateConnected {
		return ErrNotConnected
	}
	for len(data) > 0 {
		n := len(data)
		if n > c.cfg.PacLen {
			n = c.cfg.PacLen
		}
		seg := make([]byte, n)
		copy(seg, data[:n])
		c.sendq = append(c.sendq, seg)
		data = data[n:]
	}
	c.pump()
	return nil
}

// SetBusy sets local flow control: while busy, incoming I frames are
// acknowledged with RNR and the peer should stop sending.
func (c *Conn) SetBusy(busy bool) {
	if c.localBusy == busy {
		return
	}
	c.localBusy = busy
	if c.state == StateConnected {
		if busy {
			c.sendCtl(KindRNR, false, false)
		} else {
			c.sendCtl(KindRR, false, false)
		}
	}
}

// pump transmits as many queued I frames as the window allows.
func (c *Conn) pump() {
	if c.state != StateConnected {
		return
	}
	if c.peerBusy {
		// Keep T1 running so we poll a busy peer: if its RR "no longer
		// busy" report is lost, the T1 poll/final exchange re-learns
		// the peer's state instead of stalling forever.
		if len(c.sendq) > 0 && c.t1 == nil {
			c.startT1()
		}
		return
	}
	for len(c.sendq) > 0 && len(c.unacked) < c.cfg.Window {
		info := c.sendq[0]
		c.sendq = c.sendq[1:]
		c.unacked = append(c.unacked, info)
		f := &Frame{
			Dst: c.Remote, Src: c.Local, Kind: KindI,
			NS: c.vs, NR: c.vr, PID: PIDNone, Info: info, Command: true,
		}
		c.vs = (c.vs + 1) & 7
		c.Stats.SentI++
		c.Stats.BytesSent += uint64(len(info))
		c.send(f)
		if c.t1 == nil {
			c.startT1()
		}
	}
}

func (c *Conn) t1Expired() {
	c.t1 = nil
	c.Stats.T1Expiries++
	c.retries++
	if c.retries > c.cfg.N2 {
		c.fail(ErrLinkTimeout)
		return
	}
	switch c.state {
	case StateConnecting:
		c.sendCtl(KindSABM, true, true)
		c.startT1()
	case StateDisconnecting:
		c.sendCtl(KindDISC, true, true)
		c.startT1()
	case StateConnected:
		// Go-back-N: retransmit every unacknowledged I frame, asking
		// the peer to checkpoint with the poll bit on the last one.
		ns := c.va
		for i, info := range c.unacked {
			f := &Frame{
				Dst: c.Remote, Src: c.Local, Kind: KindI,
				NS: ns, NR: c.vr, PID: PIDNone, Info: info, Command: true,
				PF: i == len(c.unacked)-1,
			}
			ns = (ns + 1) & 7
			c.Stats.Retransmits++
			c.send(f)
		}
		if len(c.unacked) == 0 {
			// Nothing outstanding: poll with RR to probe the link.
			c.sendCtl(KindRR, true, true)
		}
		c.startT1()
	}
}

func (c *Conn) t3Expired() {
	c.t3 = nil
	if c.state != StateConnected {
		return
	}
	// Idle too long: poll the peer so a dead link is detected.
	c.Stats.KeepalivePolls++
	c.sendCtl(KindRR, true, true)
	if c.t1 == nil {
		c.startT1()
	}
}

func (c *Conn) fail(err error) {
	c.err = err
	c.Stats.LinkFailures++
	c.teardown()
}

func (c *Conn) teardown() {
	c.stopT1()
	c.stopT3()
	c.reset()
	c.setState(StateDisconnected)
}

func (c *Conn) reset() {
	c.vs, c.va, c.vr = 0, 0, 0
	c.sendq = nil
	c.unacked = nil
	c.rejSent = false
	c.peerBusy = false
	c.retries = 0
}

// ackTo processes an incoming N(R), releasing acknowledged frames.
func (c *Conn) ackTo(nr uint8) {
	// Number of frames acknowledged: distance from va to nr, mod 8,
	// bounded by what is actually outstanding.
	acked := int((nr - c.va) & 7)
	if acked > len(c.unacked) {
		// Peer acknowledged something we never sent; treat as protocol
		// error and reset conservatively (FRMR condition in the spec).
		acked = len(c.unacked)
	}
	if acked > 0 {
		c.unacked = c.unacked[acked:]
		c.va = nr
		c.retries = 0
		if len(c.unacked) == 0 {
			c.stopT1()
		} else {
			c.startT1()
		}
	}
}

// Input processes one frame addressed to this connection. The Endpoint
// guarantees f.Dst == c.Local and f.Src == c.Remote.
func (c *Conn) Input(f *Frame) {
	switch c.state {
	case StateDisconnected:
		c.inputDisconnected(f)
	case StateConnecting:
		c.inputConnecting(f)
	case StateConnected:
		c.inputConnected(f)
	case StateDisconnecting:
		c.inputDisconnecting(f)
	}
}

func (c *Conn) inputDisconnected(f *Frame) {
	switch f.Kind {
	case KindSABM:
		// Passive open: accept.
		c.reset()
		c.err = nil
		c.sendCtl(KindUA, f.PF, false)
		c.startT3()
		c.setState(StateConnected)
	case KindDISC:
		c.sendCtl(KindDM, f.PF, false)
	case KindUA, KindDM, KindUI, KindFRMR:
		// Ignore.
	default:
		// I or supervisory while disconnected: report DM.
		c.sendCtl(KindDM, f.PF, false)
	}
}

func (c *Conn) inputConnecting(f *Frame) {
	switch f.Kind {
	case KindUA:
		c.stopT1()
		c.reset()
		c.startT3()
		c.setState(StateConnected)
		c.pump()
	case KindDM:
		c.stopT1()
		c.err = ErrConnRefused
		c.Stats.LinkFailures++
		c.reset()
		c.setState(StateDisconnected)
	case KindSABM:
		// Simultaneous open: acknowledge; our own SABM will be UA'd too.
		c.sendCtl(KindUA, f.PF, false)
	case KindDISC:
		// The peer is still releasing a previous incarnation of this
		// link (its DISC's UA was lost). Answer DM so its release
		// completes; our SABM retry will then be accepted. Without
		// this, Connecting and Disconnecting starve each other until
		// both sides exhaust N2.
		c.sendCtl(KindDM, f.PF, false)
	}
}

func (c *Conn) inputDisconnecting(f *Frame) {
	switch f.Kind {
	case KindUA, KindDM:
		c.stopT1()
		c.teardown()
	case KindDISC:
		c.sendCtl(KindUA, f.PF, false)
		c.stopT1()
		c.teardown()
	}
}

func (c *Conn) inputConnected(f *Frame) {
	c.startT3() // any traffic restarts the idle timer
	switch f.Kind {
	case KindI:
		c.ackTo(f.NR)
		if f.NS == c.vr {
			c.vr = (c.vr + 1) & 7
			c.rejSent = false
			c.Stats.RcvdI++
			c.Stats.BytesReceived += uint64(len(f.Info))
			info := append([]byte(nil), f.Info...)
			if c.OnData != nil {
				c.OnData(info)
			}
			// Acknowledge: piggyback if we have data, else RR.
			if len(c.sendq) > 0 && !c.peerBusy && len(c.unacked) < c.cfg.Window {
				c.pump()
			} else if c.localBusy {
				c.sendCtl(KindRNR, f.PF && f.Command, false)
			} else {
				c.sendCtl(KindRR, f.PF && f.Command, false)
			}
		} else {
			c.Stats.OutOfSeq++
			if !c.rejSent {
				c.rejSent = true
				c.Stats.RejSent++
				c.sendCtl(KindREJ, f.PF && f.Command, false)
			} else if f.PF && f.Command {
				c.sendCtl(KindRR, true, false)
			}
		}
		c.pump()
	case KindRR, KindRNR, KindREJ:
		c.peerBusy = f.Kind == KindRNR
		if !f.Command && f.PF {
			// A final answering our checkpoint/keepalive poll: the
			// link is alive. Without this, T1 keeps re-polling after a
			// T3 keepalive until N2 kills a perfectly healthy link.
			c.retries = 0
			if len(c.unacked) == 0 && len(c.sendq) == 0 {
				c.stopT1()
			}
		}
		if f.Kind == KindREJ {
			c.Stats.RejRcvd++
			c.ackTo(f.NR)
			// Retransmit everything outstanding from N(R).
			ns := c.va
			for _, info := range c.unacked {
				g := &Frame{
					Dst: c.Remote, Src: c.Local, Kind: KindI,
					NS: ns, NR: c.vr, PID: PIDNone, Info: info, Command: true,
				}
				ns = (ns + 1) & 7
				c.Stats.Retransmits++
				c.send(g)
			}
			if len(c.unacked) > 0 {
				c.startT1()
			}
		} else {
			c.ackTo(f.NR)
		}
		if f.PF && f.Command {
			// Poll: answer with final.
			c.Stats.PollsAnswered++
			if c.localBusy {
				c.sendCtl(KindRNR, true, false)
			} else {
				c.sendCtl(KindRR, true, false)
			}
		}
		c.pump()
	case KindSABM:
		// Link reset by peer.
		c.sendCtl(KindUA, f.PF, false)
		c.reset()
		c.err = ErrConnReset
	case KindDISC:
		c.sendCtl(KindUA, f.PF, false)
		c.err = nil
		c.teardown()
	case KindDM, KindFRMR:
		c.fail(ErrConnReset)
	case KindUI:
		// Connectionless traffic between connected stations: deliver.
		if c.OnData != nil && f.PID == PIDNone {
			c.OnData(append([]byte(nil), f.Info...))
		}
	}
}

// Endpoint multiplexes connected-mode links for one local address. It
// owns the mapping from remote address to Conn and hands inbound SABMs
// to the Accept callback.
type Endpoint struct {
	Local Addr

	// Accept decides whether to admit an inbound connection. If nil,
	// all connections are refused with DM. The callback may set OnData
	// and OnState on the new Conn before any data arrives.
	Accept func(*Conn) bool

	Config ConnConfig

	sched *sim.Scheduler
	xmit  func(*Frame)
	conns map[Addr]*Conn
}

// NewEndpoint builds an Endpoint that transmits frames through xmit.
func NewEndpoint(sched *sim.Scheduler, local Addr, xmit func(*Frame)) *Endpoint {
	return &Endpoint{
		Local: local,
		sched: sched,
		xmit:  xmit,
		conns: make(map[Addr]*Conn),
	}
}

// Dial returns the connection to remote (creating it if needed) and
// initiates it via the optional digipeater path.
func (e *Endpoint) Dial(remote Addr, via ...Addr) *Conn {
	c := e.conn(remote)
	c.Path = via
	c.Connect()
	return c
}

// Conns returns the live connection table (for monitoring).
func (e *Endpoint) Conns() map[Addr]*Conn { return e.conns }

func (e *Endpoint) conn(remote Addr) *Conn {
	c, ok := e.conns[remote]
	if !ok {
		c = &Conn{
			Local:  e.Local,
			Remote: remote,
			cfg:    e.Config.withDefaults(),
			sched:  e.sched,
			xmit:   e.xmit,
		}
		e.conns[remote] = c
	}
	return c
}

// Input dispatches a received frame (already filtered to Dst==Local by
// the driver) to the right connection, creating one for inbound SABMs
// the Accept callback admits.
func (e *Endpoint) Input(f *Frame) {
	c, ok := e.conns[f.Src]
	if ok && c.State() == StateDisconnected && f.Kind == KindSABM {
		// A dead connection lingering in the table must not swallow a
		// fresh open; treat the SABM as a brand-new link.
		delete(e.conns, f.Src)
		c, ok = nil, false
	}
	if !ok {
		if f.Kind != KindSABM {
			if f.Kind != KindUA && f.Kind != KindDM && f.Kind != KindUI {
				// Unexpected traffic for an unknown link: DM it.
				resp := &Frame{Dst: f.Src, Src: e.Local, Kind: KindDM, PF: f.PF}
				if p := inboundPath(f); len(p) > 0 {
					resp = resp.Via(p...)
				}
				e.xmit(resp)
			}
			return
		}
		c = e.conn(f.Src)
		c.Path = inboundPath(f)
		if e.Accept == nil || !e.Accept(c) {
			delete(e.conns, f.Src)
			resp := &Frame{Dst: f.Src, Src: e.Local, Kind: KindDM, PF: f.PF}
			if len(c.Path) > 0 {
				resp = resp.Via(c.Path...)
			}
			e.xmit(resp)
			return
		}
	}
	c.Input(f)
}

// Remove drops a (disconnected) connection from the table.
func (e *Endpoint) Remove(remote Addr) { delete(e.conns, remote) }

// inboundPath computes the reverse digipeater path for replying to f.
func inboundPath(f *Frame) []Addr {
	if len(f.Digi) == 0 {
		return nil
	}
	p := make([]Addr, len(f.Digi))
	for i, d := range f.Digi {
		p[len(f.Digi)-1-i] = d.Addr
	}
	return p
}
