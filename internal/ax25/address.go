// Package ax25 implements the AX.25 amateur packet-radio link-layer
// protocol, version 2.0 (Fox, ARRL 1984): callsign addressing, the
// wire frame format with up-to-eight digipeater source routing, the
// CRC16-CCITT frame check sequence, and the connected-mode (LAPB-style)
// state machine used by TNCs and BBSs.
package ax25

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is an AX.25 station address: a callsign of up to six characters
// (uppercase letters and digits, space padded on the wire) plus a 4-bit
// SSID (secondary station identifier). In the paper's words: "AX.25
// addresses look like amateur radio callsigns followed by a 4 bit
// system ID."
type Addr struct {
	Call [6]byte // space padded, uppercase
	SSID uint8   // 0-15
}

// AddrLen is the wire size of one encoded address field.
const AddrLen = 7

var (
	errBadCallsign = errors.New("ax25: invalid callsign")
	errBadSSID     = errors.New("ax25: SSID out of range 0-15")
	errShortAddr   = errors.New("ax25: short address field")
)

// NewAddr builds an Addr from text such as "N7AKR", "KB7DZ-4" or
// "wa6bev-15" (case is folded). It rejects empty calls, calls longer
// than six characters, characters outside [A-Z0-9], and SSIDs > 15.
func NewAddr(s string) (Addr, error) {
	var a Addr
	call := s
	if i := strings.IndexByte(s, '-'); i >= 0 {
		call = s[:i]
		n, err := strconv.Atoi(s[i+1:])
		if err != nil || n < 0 || n > 15 {
			return a, fmt.Errorf("%w: %q", errBadSSID, s)
		}
		a.SSID = uint8(n)
	}
	if len(call) == 0 || len(call) > 6 {
		return a, fmt.Errorf("%w: %q", errBadCallsign, s)
	}
	for i := 0; i < 6; i++ {
		a.Call[i] = ' '
	}
	for i := 0; i < len(call); i++ {
		c := call[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if !(c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return a, fmt.Errorf("%w: %q", errBadCallsign, s)
		}
		a.Call[i] = c
	}
	return a, nil
}

// MustAddr is NewAddr that panics on error; for tests and literals.
func MustAddr(s string) Addr {
	a, err := NewAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Callsign returns the callsign without padding or SSID.
func (a Addr) Callsign() string {
	return strings.TrimRight(string(a.Call[:]), " ")
}

// String renders "CALL" or "CALL-SSID".
func (a Addr) String() string {
	c := a.Callsign()
	if a.SSID == 0 {
		return c
	}
	return c + "-" + strconv.Itoa(int(a.SSID))
}

// IsZero reports whether a is the zero Addr.
func (a Addr) IsZero() bool { return a == Addr{} }

// Broadcast is the link-level broadcast address "QST" (per KA9Q
// convention; the paper's driver accepts frames addressed to "the
// broadcast address" as well as its own callsign).
var Broadcast = MustAddr("QST")

// Nodes is the NET/ROM routing-broadcast destination address.
var Nodes = MustAddr("NODES")

// encode writes the 7-byte wire form of a. AX.25 shifts each character
// left one bit so that bit 0 (the extension bit) of every address byte
// is free; the final byte carries the SSID in bits 1-4, the C/H bit in
// bit 7, and two reserved bits (set to 1).
//
//	byte 6: | C/H | 1 | 1 | SSID3..0 | EXT |
func (a Addr) encode(dst []byte, chBit, last bool) {
	for i := 0; i < 6; i++ {
		c := a.Call[i]
		if c == 0 {
			c = ' '
		}
		dst[i] = c << 1
	}
	b := byte(0x60) | (a.SSID&0x0F)<<1
	if chBit {
		b |= 0x80
	}
	if last {
		b |= 0x01
	}
	dst[6] = b
}

// HW returns the 7-byte wire form of a as used for the hardware
// address fields of AX.25 ARP packets (shifted callsign + SSID byte,
// C/H and extension bits clear), per the KA9Q convention the paper's
// ARP implementation derives from.
func (a Addr) HW() []byte {
	buf := make([]byte, AddrLen)
	a.encode(buf, false, false)
	return buf
}

// PutHW writes the 7-byte hardware form of a into dst (len >= 7).
func (a Addr) PutHW(dst []byte) { a.encode(dst, false, false) }

// HWToAddr decodes a 7-byte ARP hardware address back to an Addr.
func HWToAddr(hw []byte) (Addr, error) {
	a, _, _, err := decodeAddr(hw)
	return a, err
}

// decodeAddr parses one 7-byte address field, returning the address,
// the C (command/response) or H (has-been-repeated) bit, and whether
// the extension bit marks this as the last address in the header.
func decodeAddr(src []byte) (a Addr, ch bool, last bool, err error) {
	if len(src) < AddrLen {
		return a, false, false, errShortAddr
	}
	for i := 0; i < 6; i++ {
		a.Call[i] = src[i] >> 1
	}
	a.SSID = (src[6] >> 1) & 0x0F
	return a, src[6]&0x80 != 0, src[6]&0x01 != 0, nil
}
