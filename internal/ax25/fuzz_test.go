package ax25

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"packetradio/internal/sim"
)

// Property: over a link with random loss in both directions, connected
// mode either delivers the exact byte stream in order or reports a
// link failure — never corruption, duplication or reordering. Run
// across many seeds and loss rates.
func TestLAPBStreamIntegrityUnderRandomLoss(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		for _, lossPct := range []int{5, 15, 30} {
			seed, lossPct := seed, lossPct
			t.Run(fmt.Sprintf("seed%d_loss%d", seed, lossPct), func(t *testing.T) {
				sched := sim.NewScheduler(seed)
				lp := &linkPair{sched: sched, delay: 50 * time.Millisecond}
				lp.a = NewEndpoint(sched, MustAddr("AAA"), func(f *Frame) { lp.deliver("a->b", f, lp.bInput) })
				lp.b = NewEndpoint(sched, MustAddr("BBB"), func(f *Frame) { lp.deliver("b->a", f, lp.aInput) })
				lp.a.Config = ConnConfig{T1: 2 * time.Second, N2: 25, PacLen: 64}
				lp.b.Config = ConnConfig{T1: 2 * time.Second, N2: 25, PacLen: 64}
				lp.drop = func(string, *Frame) bool {
					return sched.Rand().Intn(100) < lossPct
				}

				var rcvd bytes.Buffer
				lp.b.Accept = func(c *Conn) bool {
					c.OnData = func(p []byte) { rcvd.Write(p) }
					return true
				}
				c := lp.a.Dial(MustAddr("BBB"))
				sched.RunFor(5 * time.Minute)
				if c.State() != StateConnected {
					// Connection setup may legitimately fail at high
					// loss; that is a reported failure, not corruption.
					if c.Err() == nil {
						t.Fatal("not connected but no error")
					}
					return
				}
				want := make([]byte, 600)
				r := sched.Rand()
				for i := range want {
					want[i] = byte(r.Intn(256))
				}
				for i := 0; i < len(want); i += 100 {
					c.Send(want[i : i+100])
				}
				sched.RunFor(4 * time.Hour)

				got := rcvd.Bytes()
				if c.State() == StateConnected || c.Err() == nil {
					// Link survived: stream must be exact.
					if !bytes.Equal(got, want) {
						t.Fatalf("stream corrupted: got %d bytes, want %d (prefix ok=%v)",
							len(got), len(want), bytes.HasPrefix(want, got))
					}
					return
				}
				// Link failed: whatever arrived must be a clean prefix.
				if !bytes.HasPrefix(want, got) {
					t.Fatalf("delivered bytes are not a prefix after failure (%d bytes)", len(got))
				}
			})
		}
	}
}

// Property: frames damaged on the wire (decoded as garbage) never
// corrupt connection state — the FCS/codec layers reject them.
func TestLAPBIgnoresCorruptFrames(t *testing.T) {
	sched := sim.NewScheduler(3)
	lp := &linkPair{sched: sched, delay: 10 * time.Millisecond}
	// In the real system the driver filters frames whose link address
	// is not ours before the endpoint sees them (§2.2's callsign
	// check); the harness must do the same, or DM replies to garbage
	// sources would cross-wire into the live link.
	filtered := func(ep func() *Endpoint) func(*Frame) {
		return func(f *Frame) {
			if f.Dst == ep().Local {
				ep().Input(f)
			}
		}
	}
	lp.a = NewEndpoint(sched, MustAddr("AAA"), func(f *Frame) { lp.deliver("a->b", f, filtered(func() *Endpoint { return lp.b })) })
	lp.b = NewEndpoint(sched, MustAddr("BBB"), func(f *Frame) { lp.deliver("b->a", f, filtered(func() *Endpoint { return lp.a })) })
	var rcvd bytes.Buffer
	lp.b.Accept = func(c *Conn) bool {
		c.OnData = func(p []byte) { rcvd.Write(p) }
		return true
	}
	c := lp.a.Dial(MustAddr("BBB"))
	sched.RunFor(time.Second)

	// Inject random garbage frames (as if FCS checking were bypassed);
	// only garbage that happens to be addressed to the endpoint gets
	// through, as with the real driver.
	for i := 0; i < 200; i++ {
		raw := make([]byte, 20+sched.Rand().Intn(60))
		sched.Rand().Read(raw)
		if f, err := Decode(raw); err == nil {
			if f.Dst == lp.a.Local {
				lp.a.Input(f)
			}
			if f.Dst == lp.b.Local {
				lp.b.Input(f.Clone())
			}
		}
	}
	sched.RunFor(time.Minute)
	c.Send([]byte("still sane"))
	sched.RunFor(time.Minute)
	if rcvd.String() != "still sane" {
		t.Fatalf("state corrupted by garbage: %q", rcvd.String())
	}
}
