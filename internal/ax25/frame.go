package ax25

import (
	"errors"
	"fmt"
	"strings"
)

// PID (protocol identifier) values, carried in I and UI frames to tell
// the receiver which layer-3 protocol the information field holds. The
// paper's driver demultiplexes on exactly this field: IP goes to the
// kernel's IP input queue, everything else to a tty queue for
// user-space protocol handlers.
const (
	PIDIP     = 0xCC // ARPA Internet Protocol
	PIDARP    = 0xCD // ARPA Address Resolution Protocol
	PIDNetROM = 0xCF // NET/ROM network layer
	PIDNone   = 0xF0 // no layer 3 (plain AX.25 text sessions, BBSs)
	PIDSegF   = 0x08 // segmentation fragment (recognized, not generated)
)

// Frame kinds, derived from the control field.
type Kind uint8

const (
	KindI    Kind = iota // information (connected mode)
	KindRR               // receive ready (supervisory)
	KindRNR              // receive not ready
	KindREJ              // reject
	KindSABM             // connect request (unnumbered)
	KindUA               // unnumbered acknowledge
	KindDISC             // disconnect request
	KindDM               // disconnected mode
	KindFRMR             // frame reject
	KindUI               // unnumbered information (datagrams: IP, ARP...)
)

func (k Kind) String() string {
	switch k {
	case KindI:
		return "I"
	case KindRR:
		return "RR"
	case KindRNR:
		return "RNR"
	case KindREJ:
		return "REJ"
	case KindSABM:
		return "SABM"
	case KindUA:
		return "UA"
	case KindDISC:
		return "DISC"
	case KindDM:
		return "DM"
	case KindFRMR:
		return "FRMR"
	case KindUI:
		return "UI"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// control-field templates (modulo-8 operation).
const (
	ctlI    = 0x00
	ctlRR   = 0x01
	ctlRNR  = 0x05
	ctlREJ  = 0x09
	ctlSABM = 0x2F
	ctlUA   = 0x63
	ctlDISC = 0x43
	ctlDM   = 0x0F
	ctlFRMR = 0x87
	ctlUI   = 0x03
	ctlPF   = 0x10 // poll/final bit
)

// Digi is one digipeater hop in the source route: the station address
// plus the H ("has been repeated") bit set once that station actually
// repeats the frame.
type Digi struct {
	Addr     Addr
	Repeated bool
}

// MaxDigis is the protocol limit on the digipeater path: "The standard
// amateur packet radio link layer protocol allows the specification of
// up to eight digipeaters through which a packet is to pass."
const MaxDigis = 8

// Frame is a decoded AX.25 frame (without FCS — the TNC strips and
// checks it before the host sees the frame, per §2.1 of the paper).
type Frame struct {
	Dst  Addr
	Src  Addr
	Digi []Digi // source route, at most MaxDigis entries

	Kind Kind
	// NR and NS are the receive and send sequence numbers (mod 8) for I
	// and supervisory frames.
	NR, NS uint8
	// PF is the poll (command) / final (response) bit.
	PF bool
	// Command reports the C bits: true when dst C=1, src C=0 (a command
	// frame in AX.25 v2); false for responses. UI datagrams from the
	// KA9Q lineage are sent as commands.
	Command bool

	PID  uint8  // present for I and UI frames only
	Info []byte // information field
}

var (
	errShortFrame = errors.New("ax25: frame too short")
	errTooMany    = errors.New("ax25: more than 8 digipeaters")
	errBadControl = errors.New("ax25: unrecognized control field")
)

// MaxInfo is the default largest information field (PACLEN), 256 bytes,
// the conventional packet-radio maximum and the basis of the AX.25
// interface MTU in this reproduction.
const MaxInfo = 256

// NewUI builds a UI datagram frame, the workhorse of the paper's
// driver: every encapsulated IP or ARP packet travels in one.
func NewUI(dst, src Addr, pid uint8, info []byte) *Frame {
	return &Frame{Dst: dst, Src: src, Kind: KindUI, PID: pid, Info: info, Command: true}
}

// Via returns a copy of f with the given digipeater path.
func (f *Frame) Via(digis ...Addr) *Frame {
	g := *f
	g.Digi = make([]Digi, len(digis))
	for i, d := range digis {
		g.Digi[i] = Digi{Addr: d}
	}
	return &g
}

func (f *Frame) control() byte {
	var c byte
	switch f.Kind {
	case KindI:
		c = ctlI | f.NS&7<<1 | f.NR&7<<5
	case KindRR:
		c = ctlRR | f.NR&7<<5
	case KindRNR:
		c = ctlRNR | f.NR&7<<5
	case KindREJ:
		c = ctlREJ | f.NR&7<<5
	case KindSABM:
		c = ctlSABM &^ ctlPF
	case KindUA:
		c = ctlUA &^ ctlPF
	case KindDISC:
		c = ctlDISC &^ ctlPF
	case KindDM:
		c = ctlDM &^ ctlPF
	case KindFRMR:
		c = ctlFRMR &^ ctlPF
	case KindUI:
		c = ctlUI
	}
	if f.PF {
		c |= ctlPF
	}
	return c
}

func (f *Frame) hasPID() bool { return f.Kind == KindI || f.Kind == KindUI }

// Encode appends the wire form of f (without FCS) to dst.
func (f *Frame) Encode(dst []byte) ([]byte, error) {
	if len(f.Digi) > MaxDigis {
		return nil, errTooMany
	}
	var a [AddrLen]byte
	// AX.25 v2 command/response encoding: C bit of dst = command,
	// C bit of src = response.
	f.Dst.encode(a[:], f.Command, false)
	dst = append(dst, a[:]...)
	f.Src.encode(a[:], !f.Command, len(f.Digi) == 0)
	dst = append(dst, a[:]...)
	for i, d := range f.Digi {
		d.Addr.encode(a[:], d.Repeated, i == len(f.Digi)-1)
		dst = append(dst, a[:]...)
	}
	dst = append(dst, f.control())
	if f.hasPID() {
		dst = append(dst, f.PID)
	}
	return append(dst, f.Info...), nil
}

// EncodedLen reports the wire size of f without FCS.
func (f *Frame) EncodedLen() int {
	n := AddrLen*(2+len(f.Digi)) + 1 + len(f.Info)
	if f.hasPID() {
		n++
	}
	return n
}

// Decode parses a wire-format frame (without FCS). The returned frame
// aliases src's info bytes; callers that retain frames across buffer
// reuse must copy.
func Decode(src []byte) (*Frame, error) {
	if len(src) < 2*AddrLen+1 {
		return nil, errShortFrame
	}
	f := &Frame{}
	var err error
	var dstC, srcC, last bool
	f.Dst, dstC, last, err = decodeAddr(src)
	if err != nil {
		return nil, err
	}
	if last {
		return nil, errShortFrame // destination can never be the last address
	}
	src = src[AddrLen:]
	f.Src, srcC, last, err = decodeAddr(src)
	if err != nil {
		return nil, err
	}
	src = src[AddrLen:]
	_ = srcC
	f.Command = dstC
	for !last {
		if len(f.Digi) == MaxDigis {
			return nil, errTooMany
		}
		var d Digi
		d.Addr, d.Repeated, last, err = decodeAddr(src)
		if err != nil {
			return nil, err
		}
		src = src[AddrLen:]
		f.Digi = append(f.Digi, d)
	}
	if len(src) < 1 {
		return nil, errShortFrame
	}
	ctl := src[0]
	src = src[1:]
	f.PF = ctl&ctlPF != 0
	switch {
	case ctl&0x01 == 0: // I frame
		f.Kind = KindI
		f.NS = ctl >> 1 & 7
		f.NR = ctl >> 5 & 7
	case ctl&0x03 == 0x01: // supervisory
		f.NR = ctl >> 5 & 7
		switch ctl & 0x0F {
		case ctlRR:
			f.Kind = KindRR
		case ctlRNR:
			f.Kind = KindRNR
		case ctlREJ:
			f.Kind = KindREJ
		default:
			return nil, errBadControl
		}
	default: // unnumbered
		switch ctl &^ ctlPF {
		case ctlSABM:
			f.Kind = KindSABM
		case ctlUA:
			f.Kind = KindUA
		case ctlDISC:
			f.Kind = KindDISC
		case ctlDM:
			f.Kind = KindDM
		case ctlFRMR:
			f.Kind = KindFRMR
		case ctlUI:
			f.Kind = KindUI
		default:
			return nil, errBadControl
		}
	}
	if f.hasPID() {
		if len(src) < 1 {
			return nil, errShortFrame
		}
		f.PID = src[0]
		src = src[1:]
	}
	f.Info = src
	return f, nil
}

// NextDigi returns the index of the first digipeater that has not yet
// repeated the frame, or -1 if the path is exhausted (or empty), in
// which case the frame is at large for its final destination.
func (f *Frame) NextDigi() int {
	for i, d := range f.Digi {
		if !d.Repeated {
			return i
		}
	}
	return -1
}

// LinkDst returns the station that should receive this frame on the
// air right now: the next unrepeated digipeater if any, else Dst.
func (f *Frame) LinkDst() Addr {
	if i := f.NextDigi(); i >= 0 {
		return f.Digi[i].Addr
	}
	return f.Dst
}

// String renders a monitor-style summary: "SRC>DST,DIGI*,DIGI: UI pid=CC len=40".
func (f *Frame) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s>%s", f.Src, f.Dst)
	for _, d := range f.Digi {
		b.WriteByte(',')
		b.WriteString(d.Addr.String())
		if d.Repeated {
			b.WriteByte('*')
		}
	}
	fmt.Fprintf(&b, ": %s", f.Kind)
	switch f.Kind {
	case KindI:
		fmt.Fprintf(&b, " ns=%d nr=%d", f.NS, f.NR)
	case KindRR, KindRNR, KindREJ:
		fmt.Fprintf(&b, " nr=%d", f.NR)
	}
	if f.PF {
		b.WriteString(" P/F")
	}
	if f.hasPID() {
		fmt.Fprintf(&b, " pid=%#02x len=%d", f.PID, len(f.Info))
	}
	return b.String()
}

// Clone deep-copies f so the copy survives buffer reuse.
func (f *Frame) Clone() *Frame {
	g := *f
	g.Digi = append([]Digi(nil), f.Digi...)
	g.Info = append([]byte(nil), f.Info...)
	return &g
}
