package ax25

// The AX.25 frame check sequence is the 16-bit CRC-CCITT used by HDLC
// (polynomial x^16 + x^12 + x^5 + 1, reflected, initial value 0xFFFF,
// final complement), transmitted low byte first. In the paper's system
// the KISS TNC "sends and receives data and calculates the necessary
// checksums", so the host driver never sees the FCS; internal/tnc uses
// this module on both sides of the radio.

var fcsTable [256]uint16

func init() {
	const poly = 0x8408 // reflected 0x1021
	for i := 0; i < 256; i++ {
		crc := uint16(i)
		for b := 0; b < 8; b++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ poly
			} else {
				crc >>= 1
			}
		}
		fcsTable[i] = crc
	}
}

// FCS computes the AX.25 frame check sequence over p.
func FCS(p []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range p {
		crc = crc>>8 ^ fcsTable[byte(crc)^b]
	}
	return ^crc
}

// AppendFCS appends the two FCS bytes (low byte first) for the frame
// contents already in p, returning the extended slice.
func AppendFCS(p []byte) []byte {
	fcs := FCS(p)
	return append(p, byte(fcs), byte(fcs>>8))
}

// CheckFCS verifies a frame whose last two bytes are its FCS, returning
// the frame body (without FCS) and whether the check passed.
func CheckFCS(p []byte) ([]byte, bool) {
	if len(p) < 2 {
		return nil, false
	}
	body := p[:len(p)-2]
	want := uint16(p[len(p)-2]) | uint16(p[len(p)-1])<<8
	return body, FCS(body) == want
}
