package ax25

import (
	"bytes"
	"testing"
	"testing/quick"
)

func mustEncode(t *testing.T, f *Frame) []byte {
	t.Helper()
	b, err := f.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestUIFrameRoundTrip(t *testing.T) {
	f := NewUI(MustAddr("KD7NM"), MustAddr("N7AKR-2"), PIDIP, []byte{1, 2, 3, 4})
	enc := mustEncode(t, f)
	if len(enc) != f.EncodedLen() {
		t.Fatalf("EncodedLen = %d, len = %d", f.EncodedLen(), len(enc))
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != f.Dst || got.Src != f.Src || got.Kind != KindUI ||
		got.PID != PIDIP || !bytes.Equal(got.Info, f.Info) || !got.Command {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestDigipeaterPathRoundTrip(t *testing.T) {
	f := NewUI(MustAddr("KB7DZ"), MustAddr("W1GOH"), PIDNone, []byte("hi")).
		Via(MustAddr("RELAY-1"), MustAddr("RELAY-2"), MustAddr("RELAY-3"))
	f.Digi[0].Repeated = true
	enc := mustEncode(t, f)
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Digi) != 3 {
		t.Fatalf("digi count = %d", len(got.Digi))
	}
	if !got.Digi[0].Repeated || got.Digi[1].Repeated || got.Digi[2].Repeated {
		t.Fatalf("H bits wrong: %+v", got.Digi)
	}
	if got.Digi[1].Addr != MustAddr("RELAY-2") {
		t.Fatalf("digi[1] = %v", got.Digi[1].Addr)
	}
}

func TestMaxDigisEnforced(t *testing.T) {
	digis := make([]Addr, 9)
	for i := range digis {
		digis[i] = MustAddr("D1")
		digis[i].SSID = uint8(i)
	}
	f := NewUI(MustAddr("A1"), MustAddr("B1"), PIDNone, nil).Via(digis...)
	if _, err := f.Encode(nil); err == nil {
		t.Fatal("encoding 9 digipeaters should fail")
	}
	// Eight is fine.
	f = NewUI(MustAddr("A1"), MustAddr("B1"), PIDNone, nil).Via(digis[:8]...)
	enc := mustEncode(t, f)
	got, err := Decode(enc)
	if err != nil || len(got.Digi) != 8 {
		t.Fatalf("decode: %v, digis=%d", err, len(got.Digi))
	}
}

func TestAllFrameKindsRoundTrip(t *testing.T) {
	a, b := MustAddr("AA1A"), MustAddr("BB2B-3")
	for _, k := range []Kind{KindSABM, KindUA, KindDISC, KindDM, KindFRMR} {
		for _, pf := range []bool{false, true} {
			f := &Frame{Dst: a, Src: b, Kind: k, PF: pf, Command: true}
			got, err := Decode(mustEncode(t, f))
			if err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			if got.Kind != k || got.PF != pf {
				t.Fatalf("kind %v pf %v: got %v %v", k, pf, got.Kind, got.PF)
			}
		}
	}
	for _, k := range []Kind{KindRR, KindRNR, KindREJ} {
		for nr := uint8(0); nr < 8; nr++ {
			f := &Frame{Dst: a, Src: b, Kind: k, NR: nr}
			got, err := Decode(mustEncode(t, f))
			if err != nil {
				t.Fatalf("%v nr=%d: %v", k, nr, err)
			}
			if got.Kind != k || got.NR != nr {
				t.Fatalf("%v nr=%d: got %v nr=%d", k, nr, got.Kind, got.NR)
			}
		}
	}
	for ns := uint8(0); ns < 8; ns++ {
		for nr := uint8(0); nr < 8; nr++ {
			f := &Frame{Dst: a, Src: b, Kind: KindI, NS: ns, NR: nr, PID: PIDNone, Info: []byte("x"), Command: true}
			got, err := Decode(mustEncode(t, f))
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != KindI || got.NS != ns || got.NR != nr || got.PID != PIDNone {
				t.Fatalf("I ns=%d nr=%d: got %+v", ns, nr, got)
			}
		}
	}
}

func TestCommandResponseBit(t *testing.T) {
	a, b := MustAddr("AA1A"), MustAddr("BB2B")
	cmd := &Frame{Dst: a, Src: b, Kind: KindRR, Command: true}
	got, err := Decode(mustEncode(t, cmd))
	if err != nil || !got.Command {
		t.Fatalf("command bit lost: %v %v", got, err)
	}
	resp := &Frame{Dst: a, Src: b, Kind: KindRR, Command: false}
	got, err = Decode(mustEncode(t, resp))
	if err != nil || got.Command {
		t.Fatalf("response decoded as command: %v %v", got, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil frame should fail")
	}
	if _, err := Decode(make([]byte, 10)); err == nil {
		t.Fatal("short frame should fail")
	}
	// Address header claims last=true on the destination.
	f := NewUI(MustAddr("AA1A"), MustAddr("BB2B"), PIDNone, nil)
	enc := mustEncode(t, f)
	enc[6] |= 0x01 // set extension bit on dst
	if _, err := Decode(enc); err == nil {
		t.Fatal("dst-is-last should fail")
	}
	// I frame missing PID.
	hdr := enc[:14]
	bad := append(append([]byte(nil), hdr...), ctlI) // I frame, then nothing
	if _, err := Decode(bad); err == nil {
		t.Fatal("I frame without PID should fail")
	}
}

func TestNextDigiAndLinkDst(t *testing.T) {
	f := NewUI(MustAddr("DEST"), MustAddr("SRC"), PIDNone, nil).
		Via(MustAddr("D1"), MustAddr("D2"))
	if f.NextDigi() != 0 || f.LinkDst() != MustAddr("D1") {
		t.Fatalf("fresh path: next=%d linkdst=%v", f.NextDigi(), f.LinkDst())
	}
	f.Digi[0].Repeated = true
	if f.NextDigi() != 1 || f.LinkDst() != MustAddr("D2") {
		t.Fatalf("after first hop: next=%d linkdst=%v", f.NextDigi(), f.LinkDst())
	}
	f.Digi[1].Repeated = true
	if f.NextDigi() != -1 || f.LinkDst() != MustAddr("DEST") {
		t.Fatalf("exhausted path: next=%d linkdst=%v", f.NextDigi(), f.LinkDst())
	}
	g := NewUI(MustAddr("DEST"), MustAddr("SRC"), PIDNone, nil)
	if g.NextDigi() != -1 || g.LinkDst() != MustAddr("DEST") {
		t.Fatal("no-path frame should go direct")
	}
}

func TestFrameString(t *testing.T) {
	f := NewUI(MustAddr("KD7NM"), MustAddr("N7AKR"), PIDIP, []byte{0, 1}).
		Via(MustAddr("RLY"))
	f.Digi[0].Repeated = true
	s := f.String()
	want := "N7AKR>KD7NM,RLY*: UI pid=0xcc len=2"
	if s != want {
		t.Fatalf("String() = %q, want %q", s, want)
	}
}

func TestClone(t *testing.T) {
	f := NewUI(MustAddr("A1"), MustAddr("B2"), PIDIP, []byte{1, 2, 3}).Via(MustAddr("D1"))
	g := f.Clone()
	g.Info[0] = 99
	g.Digi[0].Repeated = true
	if f.Info[0] == 99 || f.Digi[0].Repeated {
		t.Fatal("Clone shares storage with original")
	}
}

func TestQuickFrameRoundTrip(t *testing.T) {
	calls := []string{"AA1A", "BB2B-1", "CC3C-15", "D4D", "EE5EE-7"}
	f := func(dst, src, ndigi uint8, pf bool, info []byte) bool {
		fr := NewUI(MustAddr(calls[int(dst)%len(calls)]), MustAddr(calls[int(src)%len(calls)]), PIDIP, info)
		fr.PF = pf
		n := int(ndigi) % (MaxDigis + 1)
		digis := make([]Addr, n)
		for i := range digis {
			digis[i] = MustAddr(calls[(int(dst)+i)%len(calls)])
		}
		fr = fr.Via(digis...)
		enc, err := fr.Encode(nil)
		if err != nil {
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		return got.Dst == fr.Dst && got.Src == fr.Src && len(got.Digi) == n &&
			got.PF == pf && bytes.Equal(got.Info, fr.Info)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindSABM.String() != "SABM" || KindUI.String() != "UI" || Kind(99).String() != "Kind(99)" {
		t.Fatal("Kind.String broken")
	}
}
