package ax25

import (
	"testing"
	"testing/quick"
)

func TestFCSKnownVector(t *testing.T) {
	// The CCITT CRC16 (reflected, init 0xFFFF, xorout 0xFFFF), also
	// known as CRC-16/X-25, of "123456789" is 0x906E.
	if got := FCS([]byte("123456789")); got != 0x906E {
		t.Fatalf("FCS = %#04x, want 0x906e", got)
	}
}

func TestAppendCheckRoundTrip(t *testing.T) {
	body := []byte("the quick brown fox")
	framed := AppendFCS(append([]byte(nil), body...))
	if len(framed) != len(body)+2 {
		t.Fatalf("framed len = %d", len(framed))
	}
	got, ok := CheckFCS(framed)
	if !ok {
		t.Fatal("CheckFCS failed on valid frame")
	}
	if string(got) != string(body) {
		t.Fatalf("body = %q", got)
	}
}

func TestCheckFCSDetectsCorruption(t *testing.T) {
	framed := AppendFCS([]byte("payload bytes here"))
	for i := range framed {
		mut := append([]byte(nil), framed...)
		mut[i] ^= 0x01
		if _, ok := CheckFCS(mut); ok {
			t.Fatalf("single-bit error at byte %d not detected", i)
		}
	}
}

func TestCheckFCSShort(t *testing.T) {
	if _, ok := CheckFCS([]byte{0x01}); ok {
		t.Fatal("1-byte frame must fail")
	}
	if _, ok := CheckFCS(nil); ok {
		t.Fatal("empty frame must fail")
	}
}

func TestQuickFCSRoundTrip(t *testing.T) {
	f := func(body []byte) bool {
		framed := AppendFCS(append([]byte(nil), body...))
		got, ok := CheckFCS(framed)
		return ok && string(got) == string(body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFCSBitErrorDetected(t *testing.T) {
	f := func(body []byte, pos uint16, bit uint8) bool {
		if len(body) == 0 {
			return true
		}
		framed := AppendFCS(append([]byte(nil), body...))
		framed[int(pos)%len(framed)] ^= 1 << (bit % 8)
		_, ok := CheckFCS(framed)
		return !ok // any single-bit error must be detected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
