package ax25

import (
	"bytes"
	"testing"
	"time"

	"packetradio/internal/sim"
)

// linkPair wires two Endpoints together through the scheduler with a
// configurable one-way delay and deterministic frame-loss hook.
type linkPair struct {
	sched *sim.Scheduler
	a, b  *Endpoint
	delay time.Duration
	// drop decides whether a frame travelling in the given direction
	// ("a->b" or "b->a") is lost. Nil means no loss.
	drop func(dir string, f *Frame) bool
	sent []string
}

func newLinkPair(t *testing.T) *linkPair {
	t.Helper()
	lp := &linkPair{sched: sim.NewScheduler(1), delay: 10 * time.Millisecond}
	lp.a = NewEndpoint(lp.sched, MustAddr("AAA"), func(f *Frame) { lp.deliver("a->b", f, lp.bInput) })
	lp.b = NewEndpoint(lp.sched, MustAddr("BBB"), func(f *Frame) { lp.deliver("b->a", f, lp.aInput) })
	return lp
}

func (lp *linkPair) aInput(f *Frame) { lp.a.Input(f) }
func (lp *linkPair) bInput(f *Frame) { lp.b.Input(f) }

func (lp *linkPair) deliver(dir string, f *Frame, to func(*Frame)) {
	lp.sent = append(lp.sent, dir+" "+f.String())
	if lp.drop != nil && lp.drop(dir, f) {
		return
	}
	g := f.Clone()
	lp.sched.After(lp.delay, func() { to(g) })
}

func acceptAll(recv *bytes.Buffer) func(*Conn) bool {
	return func(c *Conn) bool {
		c.OnData = func(p []byte) { recv.Write(p) }
		return true
	}
}

func TestConnectTransferDisconnect(t *testing.T) {
	lp := newLinkPair(t)
	var recv bytes.Buffer
	lp.b.Accept = acceptAll(&recv)

	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(time.Second)
	if c.State() != StateConnected {
		t.Fatalf("state = %v, want CONNECTED", c.State())
	}
	bc := lp.b.Conns()[MustAddr("AAA")]
	if bc == nil || bc.State() != StateConnected {
		t.Fatal("acceptor side not connected")
	}

	msg := bytes.Repeat([]byte("hello packet radio! "), 40) // forces segmentation
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	lp.sched.RunFor(30 * time.Second)
	if !bytes.Equal(recv.Bytes(), msg) {
		t.Fatalf("received %d bytes, want %d; data mismatch", recv.Len(), len(msg))
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d after full ack", c.Pending())
	}

	c.Disconnect()
	lp.sched.RunFor(5 * time.Second)
	if c.State() != StateDisconnected || bc.State() != StateDisconnected {
		t.Fatalf("states after DISC: %v / %v", c.State(), bc.State())
	}
	if c.Err() != nil {
		t.Fatalf("clean disconnect left error %v", c.Err())
	}
}

func TestRefusedConnection(t *testing.T) {
	lp := newLinkPair(t)
	lp.b.Accept = func(*Conn) bool { return false }
	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(time.Second)
	if c.State() != StateDisconnected {
		t.Fatalf("state = %v, want DISCONNECTED", c.State())
	}
	if c.Err() != ErrConnRefused {
		t.Fatalf("err = %v, want ErrConnRefused", c.Err())
	}
}

func TestNilAcceptRefuses(t *testing.T) {
	lp := newLinkPair(t)
	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(time.Second)
	if c.Err() != ErrConnRefused {
		t.Fatalf("err = %v, want refused when Accept is nil", c.Err())
	}
}

func TestRetransmissionOnLoss(t *testing.T) {
	lp := newLinkPair(t)
	var recv bytes.Buffer
	lp.b.Accept = acceptAll(&recv)
	lp.a.Config = ConnConfig{T1: 500 * time.Millisecond}

	// Drop the first two I frames in the a->b direction.
	dropped := 0
	lp.drop = func(dir string, f *Frame) bool {
		if dir == "a->b" && f.Kind == KindI && dropped < 2 {
			dropped++
			return true
		}
		return false
	}

	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(time.Second)
	msg := []byte("must survive loss")
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	lp.sched.RunFor(time.Minute)
	if !bytes.Equal(recv.Bytes(), msg) {
		t.Fatalf("received %q, want %q", recv.Bytes(), msg)
	}
	if c.Stats.Retransmits == 0 || c.Stats.T1Expiries == 0 {
		t.Fatalf("expected retransmissions, stats = %+v", c.Stats)
	}
}

func TestREJRecoversFromMidWindowLoss(t *testing.T) {
	lp := newLinkPair(t)
	var recv bytes.Buffer
	lp.b.Accept = acceptAll(&recv)
	lp.a.Config = ConnConfig{T1: 2 * time.Second, Window: 4, PacLen: 8}

	// Lose exactly the second I frame once; later frames arrive out of
	// sequence and must trigger REJ-based recovery.
	iCount := 0
	lp.drop = func(dir string, f *Frame) bool {
		if dir == "a->b" && f.Kind == KindI {
			iCount++
			return iCount == 2
		}
		return false
	}

	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(time.Second)
	msg := []byte("0123456789abcdefghijklmnopqrstuv") // 4 segments of 8
	if err := c.Send(msg); err != nil {
		t.Fatal(err)
	}
	lp.sched.RunFor(time.Minute)
	if !bytes.Equal(recv.Bytes(), msg) {
		t.Fatalf("received %q, want %q", recv.Bytes(), msg)
	}
	bc := lp.b.Conns()[MustAddr("AAA")]
	if bc.Stats.RejSent == 0 {
		t.Fatalf("receiver never sent REJ: %+v", bc.Stats)
	}
	if bc.Stats.OutOfSeq == 0 {
		t.Fatal("receiver never saw out-of-sequence frames")
	}
}

func TestN2ExhaustionFailsLink(t *testing.T) {
	lp := newLinkPair(t)
	var recv bytes.Buffer
	lp.b.Accept = acceptAll(&recv)
	lp.a.Config = ConnConfig{T1: 100 * time.Millisecond, N2: 3}

	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(time.Second)
	if c.State() != StateConnected {
		t.Fatal("setup failed")
	}
	// Now sever the a->b direction entirely.
	lp.drop = func(dir string, f *Frame) bool { return dir == "a->b" }
	c.Send([]byte("into the void"))
	lp.sched.RunFor(time.Minute)
	if c.State() != StateDisconnected {
		t.Fatalf("state = %v, want DISCONNECTED after N2", c.State())
	}
	if c.Err() != ErrLinkTimeout {
		t.Fatalf("err = %v, want ErrLinkTimeout", c.Err())
	}
}

func TestConnectRetriesThenFails(t *testing.T) {
	lp := newLinkPair(t)
	lp.drop = func(string, *Frame) bool { return true } // dead air
	lp.a.Config = ConnConfig{T1: 100 * time.Millisecond, N2: 2}
	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(10 * time.Second)
	if c.State() != StateDisconnected || c.Err() != ErrLinkTimeout {
		t.Fatalf("state=%v err=%v", c.State(), c.Err())
	}
}

func TestWindowLimitsOutstandingFrames(t *testing.T) {
	lp := newLinkPair(t)
	var recv bytes.Buffer
	lp.b.Accept = acceptAll(&recv)
	lp.a.Config = ConnConfig{Window: 2, PacLen: 4, T1: 5 * time.Second}

	// Count I frames in flight before any ack can come back: stop all
	// b->a traffic so the window must close at 2.
	inFlight := 0
	lp.drop = func(dir string, f *Frame) bool {
		if dir == "b->a" && f.Kind != KindUA {
			return true
		}
		if dir == "a->b" && f.Kind == KindI {
			inFlight++
		}
		return false
	}
	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(time.Second)
	c.Send(bytes.Repeat([]byte("x"), 40)) // 10 segments
	lp.sched.RunFor(2 * time.Second)      // less than T1
	if inFlight != 2 {
		t.Fatalf("%d I frames sent with window 2 and no acks, want 2", inFlight)
	}
}

func TestRNRStopsSender(t *testing.T) {
	lp := newLinkPair(t)
	var recv bytes.Buffer
	lp.b.Accept = acceptAll(&recv)
	lp.a.Config = ConnConfig{PacLen: 4, T1: 50 * time.Second, Window: 1}

	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(time.Second)
	bc := lp.b.Conns()[MustAddr("AAA")]
	bc.SetBusy(true)
	lp.sched.RunFor(time.Second)

	c.Send([]byte("abcdefgh")) // 2 segments
	lp.sched.RunFor(5 * time.Second)
	// The sender already learned the peer is busy, so nothing may be
	// transmitted while RNR is in force.
	if got := recv.Len(); got != 0 {
		t.Fatalf("receiver got %d bytes while busy, want 0", got)
	}
	bc.SetBusy(false)
	lp.sched.RunFor(30 * time.Minute)
	if recv.String() != "abcdefgh" {
		t.Fatalf("after unbusy got %q", recv.String())
	}
}

func TestLostUnbusyRRRecoveredByPoll(t *testing.T) {
	lp := newLinkPair(t)
	var recv bytes.Buffer
	lp.b.Accept = acceptAll(&recv)
	lp.a.Config = ConnConfig{PacLen: 4, T1: time.Second, Window: 1}

	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(time.Second)
	bc := lp.b.Conns()[MustAddr("AAA")]
	bc.SetBusy(true)
	lp.sched.RunFor(time.Second)

	// Drop the RR that announces "no longer busy": the sender must
	// discover the state change through its T1 poll.
	dropRR := true
	lp.drop = func(dir string, f *Frame) bool {
		if dir == "b->a" && f.Kind == KindRR && !f.PF && dropRR {
			dropRR = false
			return true
		}
		return false
	}
	c.Send([]byte("abcdefgh"))
	lp.sched.RunFor(time.Second)
	bc.SetBusy(false) // this RR is lost
	lp.sched.RunFor(time.Minute)
	if recv.String() != "abcdefgh" {
		t.Fatalf("poll recovery failed: got %q", recv.String())
	}
}

func TestT3KeepalivePolls(t *testing.T) {
	lp := newLinkPair(t)
	var recv bytes.Buffer
	lp.b.Accept = acceptAll(&recv)
	lp.a.Config = ConnConfig{T3: 5 * time.Second}
	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(30 * time.Second)
	if c.State() != StateConnected {
		t.Fatalf("idle link dropped: %v (err %v)", c.State(), c.Err())
	}
	if c.Stats.KeepalivePolls == 0 {
		t.Fatal("no keepalive polls on idle link")
	}
	bc := lp.b.Conns()[MustAddr("AAA")]
	if bc.Stats.PollsAnswered == 0 {
		t.Fatal("peer never answered polls")
	}
}

func TestT3DoesNotKillIdleLinkLongTerm(t *testing.T) {
	// Regression: the RR final answering a keepalive poll must clear
	// the T1 poll cycle, or retries accumulate until N2 tears down a
	// healthy link. Run both sides with keepalives for a long time.
	lp := newLinkPair(t)
	var recv bytes.Buffer
	lp.b.Accept = acceptAll(&recv)
	lp.a.Config = ConnConfig{T3: 30 * time.Second}
	lp.b.Config = ConnConfig{T3: 30 * time.Second}
	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(time.Hour)
	if c.State() != StateConnected {
		t.Fatalf("idle link died after an hour: err=%v stats=%+v", c.Err(), c.Stats)
	}
	if c.Stats.T1Expiries > 2 {
		t.Fatalf("T1 kept re-polling: %d expiries", c.Stats.T1Expiries)
	}
	// Link must still move data.
	if err := c.Send([]byte("still alive")); err != nil {
		t.Fatal(err)
	}
	lp.sched.RunFor(time.Minute)
	if recv.String() != "still alive" {
		t.Fatalf("got %q", recv.String())
	}
}

func TestPeerDisappearsDetectedByT3(t *testing.T) {
	lp := newLinkPair(t)
	var recv bytes.Buffer
	lp.b.Accept = acceptAll(&recv)
	lp.a.Config = ConnConfig{T3: 2 * time.Second, T1: 500 * time.Millisecond, N2: 3}
	c := lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(time.Second)
	lp.drop = func(string, *Frame) bool { return true } // peer vanishes
	lp.sched.RunFor(time.Minute)
	if c.State() != StateDisconnected || c.Err() != ErrLinkTimeout {
		t.Fatalf("dead peer undetected: state=%v err=%v", c.State(), c.Err())
	}
}

func TestDMInResponseToStrayTraffic(t *testing.T) {
	lp := newLinkPair(t)
	var dmSeen bool
	lp.drop = func(dir string, f *Frame) bool {
		if dir == "b->a" && f.Kind == KindDM {
			dmSeen = true
		}
		return false
	}
	// Send an I frame to B with no connection.
	f := &Frame{Dst: MustAddr("BBB"), Src: MustAddr("AAA"), Kind: KindI, PID: PIDNone, Info: []byte("?"), Command: true}
	lp.b.Input(f)
	lp.sched.RunFor(time.Second)
	if !dmSeen {
		t.Fatal("no DM for stray I frame")
	}
}

func TestSendWhileDisconnectedFails(t *testing.T) {
	lp := newLinkPair(t)
	c := lp.a.conn(MustAddr("BBB"))
	if err := c.Send([]byte("x")); err != ErrNotConnected {
		t.Fatalf("err = %v, want ErrNotConnected", err)
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	lp := newLinkPair(t)
	var fromA, fromB bytes.Buffer
	lp.b.Accept = func(c *Conn) bool {
		c.OnData = func(p []byte) { fromA.Write(p) }
		return true
	}
	c := lp.a.Dial(MustAddr("BBB"))
	c.OnData = func(p []byte) { fromB.Write(p) }
	lp.sched.RunFor(time.Second)
	bc := lp.b.Conns()[MustAddr("AAA")]

	aMsg := bytes.Repeat([]byte("A"), 600)
	bMsg := bytes.Repeat([]byte("B"), 600)
	c.Send(aMsg)
	bc.Send(bMsg)
	lp.sched.RunFor(time.Minute)
	if !bytes.Equal(fromA.Bytes(), aMsg) || !bytes.Equal(fromB.Bytes(), bMsg) {
		t.Fatalf("bidirectional mismatch: %d/%d bytes", fromA.Len(), fromB.Len())
	}
}

func TestDigipeaterPathUsedAndReversed(t *testing.T) {
	lp := newLinkPair(t)
	var recv bytes.Buffer
	lp.b.Accept = acceptAll(&recv)
	var aPathSeen, bPathSeen []Digi
	lp.drop = func(dir string, f *Frame) bool {
		if dir == "a->b" && f.Kind == KindSABM {
			aPathSeen = f.Digi
		}
		if dir == "b->a" && f.Kind == KindUA {
			bPathSeen = f.Digi
		}
		return false
	}
	c := lp.a.Dial(MustAddr("BBB"), MustAddr("D1"), MustAddr("D2"))
	lp.sched.RunFor(time.Second)
	if c.State() != StateConnected {
		t.Fatalf("state = %v", c.State())
	}
	if len(aPathSeen) != 2 || aPathSeen[0].Addr != MustAddr("D1") {
		t.Fatalf("outbound path = %v", aPathSeen)
	}
	if len(bPathSeen) != 2 || bPathSeen[0].Addr != MustAddr("D2") || bPathSeen[1].Addr != MustAddr("D1") {
		t.Fatalf("reply path = %v, want reversed [D2 D1]", bPathSeen)
	}
}

func TestStateString(t *testing.T) {
	if StateConnected.String() != "CONNECTED" || ConnState(9).String() != "UNKNOWN" {
		t.Fatal("ConnState.String broken")
	}
}

func TestEndpointRemove(t *testing.T) {
	lp := newLinkPair(t)
	lp.b.Accept = func(*Conn) bool { return true }
	lp.a.Dial(MustAddr("BBB"))
	lp.sched.RunFor(time.Second)
	if len(lp.a.Conns()) != 1 {
		t.Fatal("conn not tracked")
	}
	lp.a.Remove(MustAddr("BBB"))
	if len(lp.a.Conns()) != 0 {
		t.Fatal("conn not removed")
	}
}
