package dama

// The DAMA wire format. Every frame a member transmits is either pure
// control (POLL, NONE) or a data frame wrapped in a demand-carrying
// header; the master's own data alone travels unwrapped (it has no
// demand to report — it owns the schedule). The two magic octets make
// the classifier exact against real traffic: AX.25 address fields are
// ASCII shifted left one bit, so their octets are always even and
// never exceed 0xB4 ('Z'<<1), while magic1 is odd — no valid AX.25
// frame from the TNCs can begin with this pair.
//
//	POLL: D4 D5 'P' srcLen src dstLen dst
//	NONE: D4 D5 'N' srcLen src demandHi demandLo
//	DATA: D4 D5 'D' srcLen src demandHi demandLo flags payload...
//
// src/dst are the stations' callsign strings; demand is the sender's
// remaining queue depth after this frame (the piggybacked
// registration); flags bit0 marks the last frame of a reserved turn.

const (
	magic0 = 0xD4
	magic1 = 0xD5

	kPoll = 'P'
	kNone = 'N'
	kData = 'D'

	flagLast = 0x01
)

func appendName(b []byte, name string) []byte {
	if len(name) > 255 {
		name = name[:255]
	}
	b = append(b, byte(len(name)))
	return append(b, name...)
}

func encodePoll(src, dst string) []byte {
	b := append(make([]byte, 0, 8+len(src)+len(dst)), magic0, magic1, kPoll)
	b = appendName(b, src)
	return appendName(b, dst)
}

func encodeNone(src string) []byte {
	b := append(make([]byte, 0, 8+len(src)), magic0, magic1, kNone)
	b = appendName(b, src)
	return append(b, 0, 0)
}

func encodeData(src string, demand uint16, last bool, payload []byte) []byte {
	b := append(make([]byte, 0, dataHdrLen(src)+len(payload)), magic0, magic1, kData)
	b = appendName(b, src)
	b = append(b, byte(demand>>8), byte(demand))
	var fl byte
	if last {
		fl |= flagLast
	}
	b = append(b, fl)
	return append(b, payload...)
}

// dataHdrLen is the wrapper overhead of one data frame from src — the
// per-frame airtime cost of demand piggybacking.
func dataHdrLen(src string) int { return 3 + 1 + len(src) + 3 }

// Unwrap strips the DAMA demand header off a wrapped data frame,
// returning the inner AX.25 bytes and true; for control frames and
// anything that is not DAMA-framed it returns (nil, false). This is
// the observability seam: a capture tap or ping ledger looking at raw
// on-air bytes uses it to see the frame a slave's TNC actually queued.
func Unwrap(b []byte) ([]byte, bool) {
	kind, _, _, _, _, payload, ok := decode(b)
	if !ok || kind != kData {
		return nil, false
	}
	return payload, true
}

// decode classifies a heard frame. ok is false for anything that is
// not a well-formed DAMA frame (the master's unwrapped data, foreign
// traffic, or truncation garbage — all passed through untouched).
func decode(b []byte) (kind byte, src, dst string, demand uint16, last bool, payload []byte, ok bool) {
	if len(b) < 4 || b[0] != magic0 || b[1] != magic1 {
		return 0, "", "", 0, false, nil, false
	}
	kind = b[2]
	n := int(b[3])
	rest := b[4:]
	if len(rest) < n {
		return 0, "", "", 0, false, nil, false
	}
	src, rest = string(rest[:n]), rest[n:]
	switch kind {
	case kPoll:
		if len(rest) < 1 || len(rest) < 1+int(rest[0]) {
			return 0, "", "", 0, false, nil, false
		}
		dst = string(rest[1 : 1+int(rest[0])])
		return kind, src, dst, 0, false, nil, true
	case kNone:
		if len(rest) < 2 {
			return 0, "", "", 0, false, nil, false
		}
		demand = uint16(rest[0])<<8 | uint16(rest[1])
		return kind, src, "", demand, false, nil, true
	case kData:
		if len(rest) < 3 {
			return 0, "", "", 0, false, nil, false
		}
		demand = uint16(rest[0])<<8 | uint16(rest[1])
		last = rest[2]&flagLast != 0
		return kind, src, "", demand, last, rest[3:], true
	}
	return 0, "", "", 0, false, nil, false
}
