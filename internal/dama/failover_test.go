package dama

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"packetradio/internal/radio"
	"packetradio/internal/sim"
)

// Master failover, the scenario-diversity half of the subsystem: kill
// the master mid-cycle and the next-lowest station must take over
// deterministically, with no leaked timers, waiters or poll-list
// entries, and the whole run bit-identical across two seeded
// executions.

// failoverTrace runs the canned failover scenario and returns its full
// observable trace.
func failoverTrace(t *testing.T, kill func(n *testNet, far *radio.Channel)) string {
	t.Helper()
	n := newTestNet(11, fastCfg(), "ALPHA", "BRAVO", "CHI", "DELTA")
	far := radio.NewChannel(n.s, 1200)
	far.Attach("FARSIDE", radio.DefaultParams())

	// Background traffic from two slaves, before and after the kill.
	for j := 0; j < 10; j++ {
		for _, name := range []string{"CHI", "DELTA"} {
			rf := n.rfs[name]
			payload := []byte(fmt.Sprintf("%s-f%d", name, j))
			n.s.At(sim.Time(time.Duration(j)*20*time.Second), func() { rf.Send(payload) })
		}
	}
	n.s.RunFor(30 * time.Second)
	if m := n.ctl.Master(); m == nil || m.Name != "ALPHA" {
		t.Fatalf("pre-kill master = %v, want ALPHA", m)
	}
	kill(n, far)
	n.s.RunFor(4 * time.Minute)

	// The functioning master — the one the hearing majority follows —
	// must be the next-lowest ID. (Under FailLink the deaf ex-master
	// still believes it rules: a duel it can never win, and harmless
	// since its transmissions reach nobody.)
	var masters []string
	for _, name := range []string{"ALPHA", "BRAVO", "CHI", "DELTA"} {
		if m := n.ctl.byRF[n.rfs[name]]; m != nil && m.master {
			masters = append(masters, name)
		}
	}
	found := false
	for _, m := range masters {
		if m == "BRAVO" {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-kill masters = %v, want BRAVO among them (next-lowest ID)", masters)
	}
	for _, name := range []string{"CHI", "DELTA"} {
		if q := n.rfs[name].QueueLen(); q != 0 {
			t.Fatalf("%s wedged with %d queued frames after failover", name, q)
		}
	}
	if n.ch.Waiters() != 0 {
		t.Fatalf("wait-list leaked %d entries", n.ch.Waiters())
	}
	// One election timer per slave plus at most one action timer per
	// master; anything more is a leaked poll-cycle timer.
	slaves := n.ctl.Members() - len(masters)
	if got := n.ctl.PendingTimers(); got < slaves || got > slaves+len(masters) {
		t.Fatalf("pending timers = %d, want within [%d, %d] (%d slaves, %d masters)",
			got, slaves, slaves+len(masters), slaves, len(masters))
	}

	var tr strings.Builder
	fmt.Fprintf(&tr, "elections=%d abdications=%d demotions=%d\n",
		n.ctl.Stats.Elections, n.ctl.Stats.Abdications, n.ctl.Stats.Demotions)
	for _, name := range []string{"ALPHA", "BRAVO", "CHI", "DELTA"} {
		if rf, ok := n.rfs[name]; ok {
			fmt.Fprintf(&tr, "%s %+v\n", name, rf.Stats)
		}
		for _, h := range n.heard[name] {
			fmt.Fprintf(&tr, "%s heard %s\n", name, h)
		}
	}
	fmt.Fprintf(&tr, "channel %+v\n", n.ch.Stats)
	return tr.String()
}

func TestMasterFailoverRetune(t *testing.T) {
	kill := func(n *testNet, far *radio.Channel) {
		// The master drives out of range mid-cycle: Retune detaches it
		// from the controller and the poll stream goes silent.
		n.rfs["ALPHA"].Retune(far)
	}
	one := failoverTrace(t, kill)
	two := failoverTrace(t, kill)
	if one != two {
		t.Fatalf("failover runs diverge across identical seeds:\n-- one --\n%s\n-- two --\n%s", one, two)
	}
	if !strings.Contains(one, "heard") {
		t.Fatal("trace is vacuous")
	}
}

func TestMasterFailoverFailLink(t *testing.T) {
	kill := func(n *testNet, _ *radio.Channel) {
		// Radio failure: the master keeps polling but nobody hears it
		// and it hears nobody. Unlike Retune there is no Detach — the
		// slaves must elect purely from poll silence.
		alpha := n.rfs["ALPHA"]
		for name, rf := range n.rfs {
			if name == "ALPHA" {
				continue
			}
			n.ch.SetReachable(alpha, rf, false)
			n.ch.SetReachable(rf, alpha, false)
		}
	}
	// ALPHA remains on the roster, so the roster-derived checks in
	// failoverTrace hold; dueling masters are expected (ALPHA cannot
	// hear BRAVO's polls to abdicate) but harmless — its transmissions
	// reach nobody.
	tr := failoverTrace(t, kill)
	if !strings.Contains(tr, "heard") {
		t.Fatal("trace is vacuous")
	}
}

// A deposed master's stale action timer must not fire into the new
// regime: after abdication the ex-master is a well-behaved slave.
func TestAbdicationOnLowerIDPoll(t *testing.T) {
	n := newTestNet(12, fastCfg(), "ALPHA", "BRAVO", "CHI")
	alpha, bravo := n.rfs["ALPHA"], n.rfs["BRAVO"]
	// Deafen ALPHA so BRAVO self-elects, then heal: two masters briefly.
	for _, rf := range []*radio.Transceiver{bravo, n.rfs["CHI"]} {
		n.ch.SetReachable(alpha, rf, false)
		n.ch.SetReachable(rf, alpha, false)
	}
	n.s.RunFor(30 * time.Second)
	if m := n.ctl.Master(); m == nil {
		t.Fatal("no master elected among the hearing majority")
	}
	for _, rf := range []*radio.Transceiver{bravo, n.rfs["CHI"]} {
		n.ch.SetReachable(alpha, rf, true)
		n.ch.SetReachable(rf, alpha, true)
	}
	n.s.RunFor(time.Minute)
	// The duel must have collapsed to the lowest ID.
	masters := 0
	for _, name := range []string{"ALPHA", "BRAVO", "CHI"} {
		if n.ctl.byRF[n.rfs[name]].master {
			masters++
		}
	}
	if masters != 1 || n.ctl.Master().Name != "ALPHA" {
		t.Fatalf("after heal: %d masters, head=%v — want ALPHA alone", masters, n.ctl.Master())
	}
	if n.ctl.Stats.Abdications == 0 {
		t.Fatal("no abdication recorded; the duel never happened or never resolved")
	}
	// Traffic still flows under the restored single master.
	bravo.Send([]byte("post-duel"))
	n.s.RunFor(time.Minute)
	found := false
	for _, h := range n.heard["ALPHA"] {
		if strings.HasPrefix(h, "post-duel@") {
			found = true
		}
	}
	if !found {
		t.Fatal("post-duel frame never delivered")
	}
}
