package dama

import (
	"fmt"
	"testing"
	"time"

	"packetradio/internal/radio"
	"packetradio/internal/sim"
)

// FuzzDAMA drives random demand and churn schedules through a polled
// channel — sends, directed reachability flips, retunes off and back
// onto the channel (with re-Join) — and checks the two properties no
// schedule may break: a frame is never delivered intact twice to the
// same receiver, and once the topology heals the poll loop serves
// every queue dry (no deadlock, no leaked waiters).
func FuzzDAMA(f *testing.F) {
	f.Add(int64(1), []byte{2, 0, 1, 4, 1, 2, 3, 2, 0, 8, 0, 1, 2})
	f.Add(int64(9), []byte{3, 2, 3, 1, 1, 0, 6, 2, 2, 2, 0, 3, 9, 1, 1, 0})
	f.Add(int64(42), []byte{1, 2, 5, 5, 2, 1, 7, 2, 1, 7, 0, 0, 1})
	f.Fuzz(func(t *testing.T, seed int64, prog []byte) {
		if len(prog) == 0 {
			return
		}
		if len(prog) > 64 {
			prog = prog[:64] // bound one exec
		}
		header, ops := prog[0], prog[1:]
		stations := 2 + int(header&0x3)

		s := sim.NewScheduler(seed)
		ch := radio.NewChannel(s, 1200)
		far := radio.NewChannel(s, 1200) // where retuned stations roam
		ctl := New(ch, Config{
			ElectionTimeout: 2 * time.Second,
			ElectionStep:    time.Second,
			IdleGap:         500 * time.Millisecond,
			Burst:           2,
		})
		rfs := make([]*radio.Transceiver, stations)
		away := make([]bool, stations)
		// heard[i][payload] counts intact deliveries at station i.
		heard := make([]map[string]int, stations)
		for i := range rfs {
			rfs[i] = ch.Attach(fmt.Sprintf("S%d", i), radio.DefaultParams())
			heard[i] = make(map[string]int)
			i := i
			rfs[i].SetReceiver(func(fr []byte, damaged bool) {
				if damaged {
					return
				}
				heard[i][string(fr)]++
			})
			ctl.Join(rfs[i])
		}
		frameID := 0
		edgeCut := make(map[[2]int]bool) // directed cuts in force
		for o := 0; o+2 < len(ops); o += 3 {
			cmd, x, y := ops[o], int(ops[o+1]), ops[o+2]
			s.RunFor(time.Duration(y) * 300 * time.Millisecond)
			st := x % stations
			switch cmd % 4 {
			case 0, 1: // queue a uniquely tagged frame
				frameID++
				rfs[st].Send([]byte(fmt.Sprintf("f%d-from-S%d", frameID, st)))
			case 2: // flip one directed reachability edge
				to := int(y) % stations
				if to != st {
					key := [2]int{st, to}
					edgeCut[key] = !edgeCut[key]
					ch.SetReachable(rfs[st], rfs[to], !edgeCut[key])
				}
			case 3: // retune away / back (with re-Join)
				if away[st] {
					rfs[st].Retune(ch)
					ctl.Join(rfs[st])
				} else {
					rfs[st].Retune(far)
				}
				away[st] = !away[st]
			}
		}
		// Heal: everyone back on the channel, full mesh restored.
		for i, rf := range rfs {
			if away[i] {
				rf.Retune(ch)
				ctl.Join(rf)
			}
			for _, other := range rfs {
				if other != rf {
					ch.SetReachable(rf, other, true)
				}
			}
		}
		s.RunFor(15 * time.Minute)

		for i, rf := range rfs {
			if q := rf.QueueLen(); q != 0 {
				t.Fatalf("S%d wedged with %d queued frames after heal — poll loop deadlock", i, q)
			}
			for payload, cnt := range heard[i] {
				if cnt > 1 {
					t.Fatalf("S%d received %q intact %d times", i, payload, cnt)
				}
			}
		}
		if ch.Waiters() != 0 {
			t.Fatalf("wait-list leaked %d entries", ch.Waiters())
		}
		if ctl.Master() == nil {
			t.Fatal("no master on a healed, fully populated channel")
		}
	})
}
