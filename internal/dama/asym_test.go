package dama

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// Directed-asymmetry regressions (the ROADMAP "asymmetric links"
// scenario gap): SetReachable is a one-way cut, and a polled MAC has a
// sharper failure mode than CSMA — a slave that hears the master but
// not vice versa answers every poll into the void, and the master must
// time out cleanly rather than wedge the poll list on it.

func TestOneWayLinkSlaveUnheard(t *testing.T) {
	cfg := fastCfg()
	cfg.Burst = 2
	n := newTestNet(21, cfg, "GW", "S1", "S2")
	n.s.RunFor(10 * time.Second) // GW takes mastership
	gw, s1, s2 := n.rfs["GW"], n.rfs["S1"], n.rfs["S2"]
	// S1 registers real demand first (a deep queue at Burst=2 keeps its
	// reported demand nonzero across turns) …
	for j := 0; j < 40; j++ {
		s1.Send([]byte(fmt.Sprintf("S1-f%d", j)))
	}
	n.s.RunFor(15 * time.Second)
	if s1.QueueLen() == 0 {
		t.Fatal("setup: S1 drained before the cut; deepen the queue")
	}
	// … then its transmitter dies toward everyone; it still hears the
	// master, so it answers every poll into the void.
	n.ch.SetReachable(s1, gw, false)
	n.ch.SetReachable(s1, s2, false)
	for j := 0; j < 4; j++ {
		s2.Send([]byte(fmt.Sprintf("S2-f%d", j)))
	}
	n.s.RunFor(4 * time.Minute)

	// S1 was polled, answered (transmissions happened), and the master
	// timed out on every unheard answer.
	if s1.Stats.PollsHeard == 0 {
		t.Fatal("S1 never heard a poll — discovery skipped it")
	}
	if gw.Stats.PollTimeouts == 0 {
		t.Fatal("master recorded no poll timeouts over a one-way link")
	}
	if n.ctl.Stats.Demotions == 0 {
		t.Fatal("S1's stale demand was never demoted; every cycle will burn a full timeout on it")
	}
	// The healthy slave's traffic is unaffected: the poll list did not
	// wedge behind the dead turn.
	delivered := 0
	for _, h := range n.heard["GW"] {
		if strings.HasPrefix(h, "S2-f") {
			delivered++
		}
	}
	if delivered != 4 {
		t.Fatalf("S2 delivered %d/4 frames behind the one-way slave, want all 4", delivered)
	}
	// S1 keeps hearing polls, so it must never self-elect into a duel.
	if m := n.ctl.byRF[s1]; m.master {
		t.Fatal("one-way slave self-elected despite hearing the master's polls")
	}
	if n.ch.Waiters() != 0 {
		t.Fatalf("wait-list leaked %d entries", n.ch.Waiters())
	}
}

func TestOneWayLinkHealRestoresService(t *testing.T) {
	n := newTestNet(22, fastCfg(), "GW", "S1")
	n.s.RunFor(10 * time.Second)
	gw, s1 := n.rfs["GW"], n.rfs["S1"]
	n.ch.SetReachable(s1, gw, false)
	// A frame transmitted into the one-way void is lost at the MAC —
	// DAMA guarantees collision-freedom, not delivery; reliability
	// stays an upper-layer concern exactly as under CSMA.
	s1.Send([]byte("while-broken"))
	n.s.RunFor(2 * time.Minute)
	if s1.QueueLen() != 0 {
		t.Fatalf("S1 held %d frames instead of answering its polls", s1.QueueLen())
	}
	pollsBefore := s1.Stats.PollsHeard
	n.ch.SetReachable(s1, gw, true)
	n.s.RunFor(time.Minute)
	s1.Send([]byte("after-heal"))
	n.s.RunFor(2 * time.Minute)
	// Discovery re-found the healed slave and service resumed.
	found := false
	for _, h := range n.heard["GW"] {
		if strings.HasPrefix(h, "after-heal@") {
			found = true
		}
	}
	if !found {
		t.Fatal("frame sent after the heal never delivered — the slave stayed demoted forever")
	}
	if s1.Stats.PollsHeard <= pollsBefore {
		t.Fatal("no polls reached the slave after the heal")
	}
	if gw.Stats.PollTimeouts == 0 {
		t.Fatal("the outage produced no poll timeouts; the cut never bit")
	}
}
