// Package dama implements demand-assigned polled channel access — the
// MAC that lifts delivery past the CSMA saturation knee E15 exposed
// (~25 stations per 1200 bps channel). Where p-persistent CSMA burns
// airtime on collisions once offered load crosses the channel's
// capacity, DAMA makes the channel collision-free by construction: one
// master per channel runs a demand-weighted round-robin poll list, and
// every other station transmits only inside the reserved slot a poll
// grants it. It is the same move real AX.25 networks made (DAMA
// masters coordinating slaves) and the same shape as coordinator-driven
// access on Wi-Fi APs.
//
// The protocol, all of it on the air (nothing travels by shared
// memory except the member roster, which models the network's
// configured frequency plan):
//
//   - The master POLLs one station; the polled station answers
//     immediately in its reserved slot — wrapped DATA frames (up to
//     Burst per turn) or a short NONE if its queue is empty. Either
//     answer piggybacks the station's remaining queue depth, so demand
//     registration costs no extra transmissions.
//   - The master serves stations with reported demand round-robin
//     (staying in the ring until drained is what makes the rotation
//     demand-weighted), interleaving one discovery poll per
//     DiscoverEvery demand polls so new demand is found even under
//     load. An idle channel paces discovery with IdleGap so polling
//     does not consume the channel it arbitrates.
//   - A poll that goes unanswered times out after the worst-case
//     response airtime; MaxMisses consecutive timeouts idle the
//     station's demand so a dead or one-way link cannot wedge the poll
//     list (it keeps getting discovery polls, so a healed link
//     recovers).
//   - Mastership is elected by poll silence: every station arms a
//     timer of ElectionTimeout + rank·ElectionStep, where rank is the
//     station's position in the lexicographic order of member
//     callsigns, and resets it whenever it hears channel activity.
//     Silence therefore promotes the lowest station ID first — a
//     deterministic re-election when the master retunes away or fails
//     — and a master that hears a poll from a lower ID abdicates, so
//     duels collapse toward the lowest ID.
//
// The package plugs into the radio through radio.Accessor (DESIGN.md
// §3d): control frames are consumed below the TNC, wrapped data is
// unwrapped in Deliver, and the channel model (carrier, collisions,
// noise, reachability) is untouched — a poll lost to an asymmetric
// link is lost exactly the way a data frame would be.
package dama

import (
	"sort"
	"time"

	"packetradio/internal/radio"
	"packetradio/internal/sim"
)

// Config tunes one channel's DAMA controller. Zero values take the
// defaults noted on each field.
type Config struct {
	// ElectionTimeout is the base poll-silence interval before the
	// lowest-ranked station assumes mastership (default 5 s).
	ElectionTimeout time.Duration
	// ElectionStep is the extra silence each successive rank waits, so
	// exactly one station self-elects per silent interval. It must
	// exceed one poll's airtime or two stations could elect back to
	// back (default 2 s).
	ElectionStep time.Duration
	// IdleGap paces discovery polls when the channel has no reported
	// demand and the master no traffic (default 1 s).
	IdleGap time.Duration
	// Burst caps frames per reserved turn — the master's own traffic
	// obeys the same cap so a busy gateway cannot starve its slaves
	// (default 4).
	Burst int
	// DiscoverEvery interleaves one discovery poll per this many
	// demand polls under load (default 4).
	DiscoverEvery int
	// MaxFrame bounds one wrapped data frame's length and therefore
	// the poll-response timeout (default 360 bytes).
	MaxFrame int
	// MaxMisses is how many consecutive unanswered polls idle a
	// station's demand (default 3).
	MaxMisses int
}

func (c Config) withDefaults() Config {
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 5 * time.Second
	}
	if c.ElectionStep <= 0 {
		c.ElectionStep = 2 * time.Second
	}
	if c.IdleGap <= 0 {
		c.IdleGap = time.Second
	}
	if c.Burst <= 0 {
		c.Burst = 4
	}
	if c.DiscoverEvery <= 0 {
		c.DiscoverEvery = 4
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 360
	}
	if c.MaxMisses <= 0 {
		c.MaxMisses = 3
	}
	return c
}

// Stats counts controller-wide protocol events.
type Stats struct {
	Elections   uint64 // stations assuming mastership (incl. takeovers)
	Abdications uint64 // masters yielding to a lower station ID
	Demotions   uint64 // demand idled after MaxMisses poll timeouts
}

// masterState is where a master sits in its poll cycle.
type mstate int

const (
	mNone    mstate = iota // not master
	mIdle                  // gap timer pending before the next poll
	mData                  // own data frame in flight
	mPollAir               // poll frame in flight
	mAwait                 // response window open for the polled station
)

// member is one station's protocol state. demand and misses are the
// acting master's view of the station; with a single master at a time
// (the normal case) keeping them here rather than per-master loses
// nothing, and a takeover inheriting the outgoing master's demand view
// only speeds its first cycle up.
type member struct {
	rf   *radio.Transceiver
	rank int // position in the lexicographic callsign order

	elect *sim.Event // slave: poll-silence election timer

	// Master-side state.
	master    bool
	state     mstate
	act       *sim.Event // the single pending master timer (gap or response window)
	rr        int        // demand round-robin cursor into members
	disc      int        // discovery rotation cursor into members
	polled    *member    // station holding the current reserved turn
	ownSent   int        // own frames sent this turn, capped at Burst
	sinceDisc int        // demand polls since the last discovery poll

	// As seen by the acting master.
	demand uint16
	misses int

	// quiet counts consecutive polls (as master) that surfaced no
	// demand anywhere; once it covers the whole roster the channel is
	// genuinely idle and discovery drops to IdleGap pacing. Any sign
	// of demand resets it, so cold start and re-discovery sweep the
	// roster back to back instead of one station per gap.
	quiet int

	// Slave-side reserved-turn state.
	budget int // frames remaining in the current polled turn
}

// Controller runs DAMA for one radio channel. It implements
// radio.Accessor; every member station installs it with Join.
type Controller struct {
	Stats Stats

	// Trace, when non-nil, observes protocol transitions for the
	// flight recorder: events are "master", "abdicate", "poll",
	// "poll-timeout", "demote"; who is the station concerned. Purely
	// read-side — the callback must not touch the controller.
	Trace func(event, who string)

	cfg   Config
	ch    *radio.Channel
	sched *sim.Scheduler

	members []*member // registration order — the poll rotation order
	byRF    map[*radio.Transceiver]*member
	names   map[string]*member // callsign index for Deliver's src lookups
}

var _ radio.Accessor = (*Controller)(nil)

// New creates a controller for ch. Stations opt in with Join.
func New(ch *radio.Channel, cfg Config) *Controller {
	return &Controller{
		cfg:   cfg.withDefaults(),
		ch:    ch,
		sched: ch.Scheduler(),
		byRF:  make(map[*radio.Transceiver]*member),
		names: make(map[string]*member),
	}
}

// Config reports the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Join enrolls a transceiver on the controller's channel: its accessor
// becomes the controller and its election timer arms. A station joining
// mid-CSMA-contention (a mobile returning to a polled channel) has its
// edge-driven deferral retired first; queued frames then wait for a
// poll like any other demand. (The seed per-slot path cannot be
// retired this way — its contend closure is already scheduled — so
// per-slot stations must Join idle, which world's attach-time wiring
// guarantees.)
func (c *Controller) Join(t *radio.Transceiver) {
	if t.Channel() != c.ch {
		panic("dama: Join of a transceiver tuned elsewhere")
	}
	if c.byRF[t] != nil {
		return
	}
	if t.AccessPending() {
		t.Accessor().Detach(t)
	}
	m := &member{rf: t}
	c.members = append(c.members, m)
	c.byRF[t] = m
	c.names[t.Name] = m
	t.SetAccessor(c)
	c.recomputeRanks()
	if t.QueueLen() > 0 && !t.AccessPending() {
		c.Start(t)
	}
}

// Master returns the transceiver currently acting as channel master,
// or nil during an election.
func (c *Controller) Master() *radio.Transceiver {
	for _, m := range c.members {
		if m.master {
			return m.rf
		}
	}
	return nil
}

// Members reports the roster size.
func (c *Controller) Members() int { return len(c.members) }

// PendingTimers reports how many controller timers are armed — the
// poll-list leak check: at most one election timer per slave and one
// action timer per master may be live.
func (c *Controller) PendingTimers() int {
	n := 0
	for _, m := range c.members {
		if m.elect != nil {
			n++
		}
		if m.act != nil {
			n++
		}
	}
	return n
}

// recomputeRanks re-sorts the roster by callsign and re-arms every
// slave's election timer against its new rank. Runs on every Join and
// Leave: membership is configuration, and pushing all deadlines out on
// a change keeps the "one self-election per silent interval" spacing
// intact.
func (c *Controller) recomputeRanks() {
	byName := append([]*member(nil), c.members...)
	sort.SliceStable(byName, func(i, j int) bool { return byName[i].rf.Name < byName[j].rf.Name })
	for rank, m := range byName {
		m.rank = rank
		if !m.master {
			c.resetElect(m)
		}
	}
}

// electDeadline is m's poll-silence allowance: rank-staggered so the
// lowest callsign moves first and hears no competitor. The base is
// floored at the longest silence a healthy cycle can produce — a dead
// station's turn (poll airtime + full response timeout + idle gap) —
// or a slave watching the master time out on a one-way link would
// mistake the wait for master death and start a duel. (The floor uses
// m's own key-up delay as the estimate for everyone's, which holds in
// uniformly configured networks.)
func (c *Controller) electDeadline(m *member) time.Duration {
	floor := c.respWindow(m) + c.cfg.IdleGap + m.rf.Params.TXDelay +
		c.ch.AirTime(32) + 500*time.Millisecond
	base := c.cfg.ElectionTimeout
	if base < floor {
		base = floor
	}
	return base + time.Duration(m.rank)*c.cfg.ElectionStep
}

// resetElect re-arms (or arms) m's election timer — called whenever m
// hears evidence of a live master.
func (c *Controller) resetElect(m *member) {
	if m.master {
		return
	}
	when := c.sched.Now().Add(c.electDeadline(m))
	if m.elect != nil {
		c.sched.Reschedule(m.elect, when)
		return
	}
	m.elect = c.sched.At(when, func() {
		m.elect = nil
		c.becomeMaster(m)
	})
}

func (c *Controller) becomeMaster(m *member) {
	if m.master {
		return
	}
	if m.elect != nil {
		c.sched.Cancel(m.elect)
		m.elect = nil
	}
	m.master = true
	m.state = mIdle
	m.ownSent, m.sinceDisc = 0, 0
	// Fresh mastership, fresh view: a quiet count inherited from an
	// earlier reign would gap-pace the takeover sweep, and a leftover
	// slave-turn budget belongs to a poll that no longer stands.
	m.quiet, m.budget = 0, 0
	c.Stats.Elections++
	c.trace("master", m.rf.Name)
	if m.rf.Transmitting() {
		// Elected mid-own-transmission (possible only for a station
		// that was just polled): pick the cycle up at TxDone.
		m.state = mData
		return
	}
	c.step(m)
}

// abdicate demotes a master that heard a lower-ID competitor.
func (c *Controller) abdicate(m *member) {
	m.master = false
	m.state = mNone
	m.polled = nil
	if m.act != nil {
		c.sched.Cancel(m.act)
		m.act = nil
	}
	c.Stats.Abdications++
	c.trace("abdicate", m.rf.Name)
	c.resetElect(m)
}

// trace reports a protocol transition to the Trace hook, if any.
func (c *Controller) trace(event, who string) {
	if c.Trace != nil {
		c.Trace(event, who)
	}
}

// step is the master's scheduling decision point: own data first (up
// to Burst), then the demand ring, then paced discovery.
func (c *Controller) step(m *member) {
	if !m.master {
		return
	}
	if m.rf.Transmitting() {
		m.state = mData // resume at TxDone
		return
	}
	if !m.rf.Params.FullDuplex && m.rf.CarrierSense() {
		// Another carrier is up — a dueling master, or a response
		// running past its window. Defer the whole decision beyond it,
		// rank-staggered: of two masters colliding in lockstep, the
		// higher rank always backs off further, hears the lower's next
		// poll intact, and abdicates — duels cannot persist.
		m.state = mIdle
		m.act = c.sched.After(200*time.Millisecond+time.Duration(m.rank)*100*time.Millisecond, func() {
			m.act = nil
			c.step(m)
		})
		return
	}
	if m.rf.QueueLen() > 0 && m.ownSent < c.cfg.Burst {
		if f, ok := m.rf.TakeQueued(); ok {
			m.ownSent++
			m.state = mData
			if !m.rf.TransmitMAC(f, false) {
				m.rf.RequeueHead(f)
			}
			return
		}
	}
	m.ownSent = 0
	if m.rf.QueueLen() == 0 {
		m.rf.SetAccessPending(false)
	}
	dem := c.nextDemand(m)
	if dem != nil && m.sinceDisc < c.cfg.DiscoverEvery {
		m.sinceDisc++
		c.sendPoll(m, dem)
		return
	}
	m.sinceDisc = 0
	disc := c.nextDiscovery(m)
	switch {
	case disc != nil && (dem != nil || m.quiet < len(c.members)-1):
		// Something is (or may be) pending — known demand elsewhere,
		// or the roster has not yet answered one full sweep of polls
		// with silence: discovery rides back to back, so cold start
		// and re-discovery cost one sweep, not one station per gap.
		c.sendPoll(m, disc)
	case dem != nil:
		c.sendPoll(m, dem)
	case disc != nil:
		// A whole roster's worth of consecutive polls found nothing:
		// the channel is idle, pace the scan so arbitration does not
		// consume the medium it arbitrates.
		m.state = mIdle
		m.act = c.sched.After(c.cfg.IdleGap, func() {
			m.act = nil
			if !m.master {
				return
			}
			if c.byRF[disc.rf] == disc {
				c.sendPoll(m, disc)
			} else {
				// The captured member left (or left and re-Joined as a
				// fresh entry) during the gap; re-decide against the
				// current roster rather than poll an orphan.
				c.step(m)
			}
		})
	default:
		// Alone on the roster: idle until membership or traffic changes.
		m.state = mIdle
		m.act = c.sched.After(c.cfg.IdleGap, func() {
			m.act = nil
			c.step(m)
		})
	}
}

// nextDemand scans the roster round-robin for the next pollable
// station with reported demand.
func (c *Controller) nextDemand(m *member) *member {
	n := len(c.members)
	for k := 1; k <= n; k++ {
		i := (m.rr + k) % n
		s := c.members[i]
		if s == m || s.demand == 0 || s.misses >= c.cfg.MaxMisses {
			continue
		}
		m.rr = i
		return s
	}
	return nil
}

// nextDiscovery scans the roster round-robin for the next station with
// no reported demand — including demoted ones, so a healed link is
// re-found at discovery cadence.
func (c *Controller) nextDiscovery(m *member) *member {
	n := len(c.members)
	for k := 1; k <= n; k++ {
		i := (m.disc + k) % n
		s := c.members[i]
		if s == m || (s.demand > 0 && s.misses < c.cfg.MaxMisses) {
			continue
		}
		m.disc = i
		return s
	}
	return nil
}

func (c *Controller) sendPoll(m, s *member) {
	m.state = mPollAir
	m.polled = s
	if !m.rf.TransmitMAC(encodePoll(m.rf.Name, s.rf.Name), true) {
		// Radio busy (a dueling-master overlap): retry after a gap.
		m.state = mIdle
		m.polled = nil
		m.act = c.sched.After(c.cfg.IdleGap, func() {
			m.act = nil
			c.step(m)
		})
		return
	}
	m.rf.Stats.PollsSent++
	c.trace("poll", s.rf.Name)
}

// respWindow is the worst-case wait for one response frame from s:
// its key-up delay plus a maximum frame's airtime plus slack for the
// carrier-detect edge.
func (c *Controller) respWindow(s *member) time.Duration {
	return s.rf.Params.TXDelay + c.ch.AirTime(c.cfg.MaxFrame+dataHdrLen(s.rf.Name)) + 100*time.Millisecond
}

func (c *Controller) pollTimeout(m *member) {
	if !m.master || m.state != mAwait {
		return
	}
	m.rf.Stats.PollTimeouts++
	m.quiet++
	if s := m.polled; s != nil {
		c.trace("poll-timeout", s.rf.Name)
		s.misses++
		if s.misses == c.cfg.MaxMisses && s.demand > 0 {
			s.demand = 0
			c.Stats.Demotions++
			c.trace("demote", s.rf.Name)
		}
		m.polled = nil
	}
	c.step(m)
}

// slaveRespond transmits the next frame of m's reserved turn: wrapped
// data with piggybacked demand, or NONE when the queue is empty.
func (c *Controller) slaveRespond(m *member) {
	f, ok := m.rf.TakeQueued()
	if !ok {
		m.budget = 0
		m.rf.SetAccessPending(false)
		m.rf.TransmitMAC(encodeNone(m.rf.Name), true)
		return
	}
	m.budget--
	remaining := m.rf.QueueLen()
	last := m.budget == 0 || remaining == 0
	if last {
		// The turn ends by declaration, not by leftover budget: if the
		// host refills the queue before this frame's TxDone, the new
		// demand must wait for the next poll — continuing here would
		// transmit into a turn the master already concluded.
		m.budget = 0
	}
	d := remaining
	if d > 0xffff {
		d = 0xffff
	}
	if !m.rf.TransmitMAC(encodeData(m.rf.Name, uint16(d), last, f), false) {
		m.rf.RequeueHead(f)
		m.budget = 0
	}
}

// --- radio.Accessor -----------------------------------------------------

// Start is Send-time admission: a slave's frame waits for its poll; a
// gap-idling master jumps the gap.
func (c *Controller) Start(t *radio.Transceiver) {
	m := c.byRF[t]
	if m == nil {
		// Not on the roster (accessor installed by hand): fall back to
		// CSMA semantics rather than wedge the frame.
		t.SetAccessor(radio.CSMAAccessor())
		t.Accessor().Start(t)
		return
	}
	t.SetAccessPending(true)
	if m.master && m.state == mIdle {
		if m.act != nil {
			c.sched.Cancel(m.act)
			m.act = nil
		}
		c.step(m)
	}
}

// TxDone resumes the protocol when one of our transmissions ends.
func (c *Controller) TxDone(t *radio.Transceiver) {
	m := c.byRF[t]
	if m == nil {
		return
	}
	if m.master {
		switch m.state {
		case mData:
			c.step(m)
		case mPollAir:
			s := m.polled
			if s == nil {
				// The polled station retuned away while the poll was in
				// the air; nobody will answer, move on.
				c.step(m)
				return
			}
			m.state = mAwait
			// The rank stagger keeps two deterministic masters' timeout
			// instants apart, so the carrier-sense defer in step can
			// see the other's poll instead of sharing its key-up
			// instant (same-instant key-ups are inside the DCD window
			// and invisible to each other).
			window := c.respWindow(s) + time.Duration(m.rank)*50*time.Millisecond
			m.act = c.sched.After(window, func() {
				m.act = nil
				c.pollTimeout(m)
			})
		}
		return
	}
	// Slave: our own completed transmission is part of a reserved turn
	// a live master granted — evidence as good as hearing a poll, and
	// necessary: half-duplex, we hear nothing while bursting, and a
	// multi-frame turn of maximum frames can outlast the election
	// deadline. Re-arm before continuing.
	c.resetElect(m)
	// Continue the reserved turn while budget remains.
	if m.budget > 0 && t.QueueLen() > 0 {
		c.slaveRespond(m)
		return
	}
	m.budget = 0
	if t.QueueLen() == 0 {
		t.SetAccessPending(false)
	}
}

// Detach removes a retuning member from the roster and hands its
// transceiver back to CSMA for whatever channel it lands on.
func (c *Controller) Detach(t *radio.Transceiver) {
	m := c.byRF[t]
	if m == nil {
		return
	}
	if m.elect != nil {
		c.sched.Cancel(m.elect)
		m.elect = nil
	}
	if m.act != nil {
		c.sched.Cancel(m.act)
		m.act = nil
	}
	m.master = false
	m.state = mNone
	m.budget = 0
	for i, x := range c.members {
		if x != m {
			continue
		}
		c.members = append(c.members[:i], c.members[i+1:]...)
		// Keep every master-side cursor on the element it pointed at.
		for _, o := range c.members {
			if o.rr >= i && o.rr > 0 {
				o.rr--
			}
			if o.disc >= i && o.disc > 0 {
				o.disc--
			}
			if o.polled == m {
				// The response window times out on its own; just drop
				// the pointer so the miss lands nowhere.
				o.polled = nil
			}
		}
		break
	}
	delete(c.byRF, t)
	if c.names[t.Name] == m {
		delete(c.names, t.Name)
	}
	t.SetAccessPending(false)
	t.SetAccessor(radio.CSMAAccessor())
	c.recomputeRanks()
}

// ParamsChanged: DAMA holds no state computed against KISS parameters
// (the response window reads Params live), so nothing re-anchors.
func (c *Controller) ParamsChanged(*radio.Transceiver, radio.Params) {}

// KeyUp and CarrierChanged: DAMA stations never sit deferred against
// the carrier schedule — admission is the poll, not carrier sense.
func (c *Controller) KeyUp(*radio.Channel, *radio.Transceiver) {}

func (c *Controller) CarrierChanged(*radio.Channel) {}

// Deliver classifies every frame a member hears. Any activity is
// evidence of a live master and re-arms the election timer; polls and
// NONEs are consumed below the TNC; wrapped data is unwrapped and
// passed up.
func (c *Controller) Deliver(t *radio.Transceiver, frame []byte, damaged bool) ([]byte, bool) {
	m := c.byRF[t]
	if m == nil {
		return frame, false
	}
	c.resetElect(m)
	kind, src, dst, demand, last, payload, ok := decode(frame)
	if !ok {
		// Unwrapped traffic: the master's own data (or a non-DAMA
		// station sharing the frequency). If we are the acting master,
		// an unexpected station transmitting data is not our concern —
		// only polls contest mastership.
		return frame, false
	}
	if damaged {
		// Damage is decided at the receiver, so the content is not
		// trustworthy protocol input: wrapped data still surfaces (the
		// TNC counts the CRC error exactly as under CSMA); control
		// frames vanish and the response window absorbs the loss.
		if kind == kData {
			return payload, false
		}
		return nil, true
	}
	s := c.byName(src)
	switch kind {
	case kPoll:
		if m.master && src < m.rf.Name {
			c.abdicate(m)
		}
		// misses is the acting master's view of this member; only the
		// master writes it (timeouts up, heard frames down).
		if dst == t.Name && !m.master {
			t.Stats.PollsHeard++
			m.budget = c.cfg.Burst
			c.slaveRespond(m)
		}
		return nil, true
	case kNone, kData:
		if m.master {
			if s != nil {
				s.demand = demand
				s.misses = 0
			}
			if kind == kData || demand > 0 {
				m.quiet = 0 // the channel is carrying traffic
			} else if m.state == mAwait && s == m.polled {
				m.quiet++
			}
			if m.state == mAwait && m.polled != nil && s == m.polled {
				if kind == kNone || last {
					if m.act != nil {
						c.sched.Cancel(m.act)
						m.act = nil
					}
					m.polled = nil
					c.step(m)
				} else if m.act != nil {
					// Mid-burst: extend the window one frame.
					c.sched.Reschedule(m.act, c.sched.Now().Add(c.respWindow(s)))
				}
			}
		}
		if kind == kData {
			return payload, false
		}
		return nil, true
	}
	return nil, true
}

// byName resolves a heard callsign; a map, not a roster scan — Deliver
// runs once per receiver per frame, the simulator's hottest path on
// the 100+-station single-channel worlds this MAC exists for.
func (c *Controller) byName(name string) *member { return c.names[name] }
