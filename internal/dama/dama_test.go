package dama

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"packetradio/internal/radio"
	"packetradio/internal/sim"
)

// testNet is a small raw-radio DAMA network for protocol-level tests:
// no TNCs or IP, just transceivers sending tagged frames so every
// delivery is attributable.
type testNet struct {
	s   *sim.Scheduler
	ch  *radio.Channel
	ctl *Controller
	rfs map[string]*radio.Transceiver
	// heard[station] lists "payload@T+…" for every intact delivery.
	heard map[string][]string
}

func newTestNet(seed int64, cfg Config, names ...string) *testNet {
	n := &testNet{
		s:     sim.NewScheduler(seed),
		rfs:   make(map[string]*radio.Transceiver),
		heard: make(map[string][]string),
	}
	n.ch = radio.NewChannel(n.s, 1200)
	n.ctl = New(n.ch, cfg)
	for _, name := range names {
		name := name
		rf := n.ch.Attach(name, radio.DefaultParams())
		rf.SetReceiver(func(f []byte, damaged bool) {
			if !damaged {
				n.heard[name] = append(n.heard[name], fmt.Sprintf("%s@%v", f, n.s.Now()))
			}
		})
		n.ctl.Join(rf)
		n.rfs[name] = rf
	}
	return n
}

// fastCfg keeps test runs short: quick election, tight idle pacing.
func fastCfg() Config {
	return Config{
		ElectionTimeout: 2 * time.Second,
		ElectionStep:    time.Second,
		IdleGap:         500 * time.Millisecond,
		MaxFrame:        300,
	}
}

func TestElectionPicksLowestID(t *testing.T) {
	n := newTestNet(1, fastCfg(), "CHI", "ALPHA", "BRAVO")
	n.s.RunFor(10 * time.Second)
	m := n.ctl.Master()
	if m == nil || m.Name != "ALPHA" {
		t.Fatalf("master = %v, want ALPHA (lowest callsign)", m)
	}
	if n.ctl.Stats.Elections != 1 {
		t.Fatalf("elections = %d, want exactly 1 (rank stagger must prevent duels)", n.ctl.Stats.Elections)
	}
	// Only ALPHA's election timer is retired; the slaves' stay armed
	// against master death, plus at most one master action timer (none
	// while a poll is in flight — TxDone re-arms it).
	if got := n.ctl.PendingTimers(); got < 2 || got > 3 {
		t.Fatalf("pending timers = %d, want 2 slave election timers + at most 1 master action", got)
	}
}

func TestPolledDeliveryIsCollisionFree(t *testing.T) {
	n := newTestNet(2, fastCfg(), "GW", "S1", "S2", "S3")
	// Everyone piles traffic on at once — the exact pattern that makes
	// CSMA collide — including before a master even exists.
	for i, name := range []string{"S1", "S2", "S3"} {
		rf := n.rfs[name]
		for j := 0; j < 5; j++ {
			payload := []byte(fmt.Sprintf("%s-f%d", name, j))
			at := sim.Time(time.Duration(i) * 100 * time.Millisecond)
			n.s.At(at, func() { rf.Send(payload) })
		}
	}
	n.s.RunFor(4 * time.Minute)
	if n.ch.Stats.CollisionPairs != 0 {
		t.Fatalf("polled channel saw %d collision pairs, want 0", n.ch.Stats.CollisionPairs)
	}
	for _, name := range []string{"S1", "S2", "S3"} {
		if q := n.rfs[name].QueueLen(); q != 0 {
			t.Fatalf("%s still queues %d frames", name, q)
		}
		if sent := n.rfs[name].Stats.FramesSent; sent != 5 {
			t.Fatalf("%s transmitted %d data frames, want 5", name, sent)
		}
	}
	// The master heard every frame exactly once, unwrapped.
	got := n.heard["GW"]
	want := 15
	count := 0
	for _, h := range got {
		if strings.Contains(h, "-f") {
			count++
		}
	}
	if count != want {
		t.Fatalf("master heard %d data frames, want %d:\n%s", count, want, strings.Join(got, "\n"))
	}
	seen := map[string]int{}
	for _, h := range got {
		key := strings.SplitN(h, "@", 2)[0]
		seen[key]++
	}
	for k, c := range seen {
		if c > 1 {
			t.Fatalf("frame %q delivered %d times to the master", k, c)
		}
	}
	if n.ch.Waiters() != 0 {
		t.Fatalf("CSMA wait-list has %d entries on a DAMA channel", n.ch.Waiters())
	}
}

// Demand piggybacking: a station with a deep queue stays in the demand
// ring until drained, and the counters expose the poll economics.
func TestDemandWeightedService(t *testing.T) {
	cfg := fastCfg()
	cfg.Burst = 2
	n := newTestNet(3, cfg, "GW", "S1", "S2")
	rf := n.rfs["S1"]
	for j := 0; j < 7; j++ {
		rf.Send([]byte(fmt.Sprintf("S1-f%d", j)))
	}
	n.s.RunFor(3 * time.Minute)
	if rf.QueueLen() != 0 {
		t.Fatalf("S1 still queues %d frames", rf.QueueLen())
	}
	// 7 frames at Burst=2 need at least 4 reserved turns.
	if rf.Stats.PollsHeard < 4 {
		t.Fatalf("S1 heard %d polls, want >= 4 (Burst=2 over 7 frames)", rf.Stats.PollsHeard)
	}
	gw := n.rfs["GW"]
	if gw.Stats.PollsSent == 0 || gw.Stats.PollTimeouts != 0 {
		t.Fatalf("master polls=%d timeouts=%d, want >0 and 0", gw.Stats.PollsSent, gw.Stats.PollTimeouts)
	}
	// Fairness surface: airtime shares are visible without touching
	// internals, and control overhead is accounted on the channel.
	if gw.Stats.Airtime == 0 || rf.Stats.Airtime == 0 {
		t.Fatal("per-station airtime counters stayed zero")
	}
	if n.ch.Stats.ControlAirtime == 0 || n.ch.Stats.ControlFrames == 0 {
		t.Fatal("channel control-overhead counters stayed zero")
	}
	if n.ch.Stats.ControlAirtime >= n.ch.Stats.Airtime {
		t.Fatal("control airtime exceeds total airtime")
	}
	// Per-station shares must tile the channel's utilization exactly.
	var sum float64
	for _, r := range n.rfs {
		sum += r.AirtimeShare()
	}
	if u := n.ch.Utilization(); sum < u*0.999 || sum > u*1.001 {
		t.Fatalf("airtime shares sum to %.4f, channel utilization %.4f", sum, u)
	}
}

// The master's own traffic obeys the Burst cap: slaves are served even
// while the master has a standing backlog.
func TestMasterDoesNotStarveSlaves(t *testing.T) {
	cfg := fastCfg()
	cfg.Burst = 2
	n := newTestNet(4, cfg, "GW", "S1")
	gw, s1 := n.rfs["GW"], n.rfs["S1"]
	n.s.RunFor(10 * time.Second) // let GW take mastership
	for j := 0; j < 12; j++ {
		gw.Send([]byte(fmt.Sprintf("GW-f%d", j)))
	}
	s1.Send([]byte("S1-urgent"))
	n.s.RunFor(2 * time.Minute)
	if s1.QueueLen() != 0 {
		t.Fatal("slave frame never served while master drained its own queue")
	}
	// The slave's frame must land before the master's 12-frame backlog
	// finishes (Burst=2 forces a poll at least every 2 own frames).
	var slaveAt, lastGwAt string
	for _, h := range n.heard["GW"] {
		if strings.HasPrefix(h, "S1-urgent@") {
			slaveAt = h
		}
	}
	for _, h := range n.heard["S1"] {
		if strings.HasPrefix(h, "GW-f11@") {
			lastGwAt = h
		}
	}
	if slaveAt == "" || lastGwAt == "" {
		t.Fatalf("missing deliveries: slave=%q lastGw=%q", slaveAt, lastGwAt)
	}
	parse := func(s string) time.Duration {
		d, err := time.ParseDuration(strings.TrimPrefix(strings.SplitN(s, "@", 2)[1], "T+"))
		if err != nil {
			t.Fatalf("bad trace stamp %q: %v", s, err)
		}
		return d
	}
	if parse(slaveAt) > parse(lastGwAt) {
		t.Fatalf("slave served at %v, after the master's whole backlog (%v) — starvation", slaveAt, lastGwAt)
	}
}
