package serial

import (
	"bytes"
	"testing"
	"time"

	"packetradio/internal/sim"
)

func TestBytesArriveInOrder(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	var got []byte
	b.SetReceiver(func(c byte) { got = append(got, c) })
	msg := []byte("the quick brown fox")
	a.Write(msg)
	s.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestPacingMatchesBaudRate(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 1200) // 1200 baud -> 120 bytes/s -> 8.33ms per byte
	var times []sim.Time
	b.SetReceiver(func(byte) { times = append(times, s.Now()) })
	a.Write(make([]byte, 12)) // 12 bytes = 120 bits = 100ms
	s.Run()
	if len(times) != 12 {
		t.Fatalf("delivered %d bytes, want 12", len(times))
	}
	last := times[len(times)-1].Duration()
	// Per-byte times are rounded to nanoseconds, so allow the
	// accumulated sub-nanosecond truncation (under 1ns per byte).
	if diff := (100*time.Millisecond - last); diff < 0 || diff > 12*time.Nanosecond {
		t.Fatalf("last byte at %v, want 100ms within 12ns", last)
	}
}

func TestFullDuplexIndependentDirections(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	var fromA, fromB []byte
	b.SetReceiver(func(c byte) { fromA = append(fromA, c) })
	a.SetReceiver(func(c byte) { fromB = append(fromB, c) })
	a.Write([]byte("aaaa"))
	b.Write([]byte("bbbb"))
	s.Run()
	if string(fromA) != "aaaa" || string(fromB) != "bbbb" {
		t.Fatalf("fromA=%q fromB=%q", fromA, fromB)
	}
}

func TestBackToBackWritesCoalesce(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	var got []byte
	b.SetReceiver(func(c byte) { got = append(got, c) })
	a.Write([]byte("first "))
	a.Write([]byte("second"))
	s.Run()
	if string(got) != "first second" {
		t.Fatalf("got %q", got)
	}
	if a.BytesSent != 12 || b.BytesReceived != 12 {
		t.Fatalf("stats: sent=%d rcvd=%d", a.BytesSent, b.BytesReceived)
	}
}

func TestWriteWhileDrainingExtendsQueue(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	var got []byte
	b.SetReceiver(func(c byte) {
		got = append(got, c)
		if len(got) == 1 {
			a.Write([]byte("!"))
		}
	})
	a.Write([]byte("xy"))
	s.Run()
	if string(got) != "xy!" {
		t.Fatalf("got %q, want xy!", got)
	}
}

func TestQueueLenAndDrained(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	b.SetReceiver(func(byte) {})
	a.Write(make([]byte, 10))
	if a.QueueLen() != 10 || a.Drained() {
		t.Fatalf("QueueLen=%d Drained=%v", a.QueueLen(), a.Drained())
	}
	s.RunFor(a.line.ByteTime() * 5)
	if a.QueueLen() != 5 {
		t.Fatalf("QueueLen=%d after 5 byte times, want 5", a.QueueLen())
	}
	s.Run()
	if !a.Drained() {
		t.Fatal("not drained after Run")
	}
}

func TestNoReceiverDropsSilently(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	a.Write([]byte("lost"))
	s.Run()
	if b.BytesReceived != 4 {
		t.Fatalf("BytesReceived=%d, want 4 (counted even when dropped)", b.BytesReceived)
	}
}

func TestCorruptionInjection(t *testing.T) {
	s := sim.NewScheduler(42)
	a, b := NewLine(s, 9600)
	a.line.CorruptRate = 0.5
	var got []byte
	b.SetReceiver(func(c byte) { got = append(got, c) })
	msg := make([]byte, 1000)
	a.Write(msg)
	s.Run()
	if b.Corrupted == 0 {
		t.Fatal("no corruption at rate 0.5")
	}
	diff := 0
	for i := range got {
		if got[i] != msg[i] {
			diff++
		}
	}
	if uint64(diff) != b.Corrupted {
		t.Fatalf("corrupted count %d but %d bytes differ", b.Corrupted, diff)
	}
}

func TestDefaultBaud(t *testing.T) {
	s := sim.NewScheduler(1)
	a, _ := NewLine(s, 0)
	if a.line.Baud() != DefaultBaud {
		t.Fatalf("baud = %d, want %d", a.line.Baud(), DefaultBaud)
	}
}
