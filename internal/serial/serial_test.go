package serial

import (
	"bytes"
	"testing"
	"time"

	"packetradio/internal/sim"
)

func TestBytesArriveInOrder(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	var got []byte
	b.SetReceiver(func(c byte) { got = append(got, c) })
	msg := []byte("the quick brown fox")
	a.Write(msg)
	s.Run()
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestPacingMatchesBaudRate(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 1200) // 1200 baud -> 120 bytes/s -> 8.33ms per byte
	var times []sim.Time
	b.SetReceiver(func(byte) { times = append(times, s.Now()) })
	a.Write(make([]byte, 12)) // 12 bytes = 120 bits = 100ms
	s.Run()
	if len(times) != 12 {
		t.Fatalf("delivered %d bytes, want 12", len(times))
	}
	last := times[len(times)-1].Duration()
	// Per-byte times are rounded to nanoseconds, so allow the
	// accumulated sub-nanosecond truncation (under 1ns per byte).
	if diff := (100*time.Millisecond - last); diff < 0 || diff > 12*time.Nanosecond {
		t.Fatalf("last byte at %v, want 100ms within 12ns", last)
	}
}

func TestFullDuplexIndependentDirections(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	var fromA, fromB []byte
	b.SetReceiver(func(c byte) { fromA = append(fromA, c) })
	a.SetReceiver(func(c byte) { fromB = append(fromB, c) })
	a.Write([]byte("aaaa"))
	b.Write([]byte("bbbb"))
	s.Run()
	if string(fromA) != "aaaa" || string(fromB) != "bbbb" {
		t.Fatalf("fromA=%q fromB=%q", fromA, fromB)
	}
}

func TestBackToBackWritesCoalesce(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	var got []byte
	b.SetReceiver(func(c byte) { got = append(got, c) })
	a.Write([]byte("first "))
	a.Write([]byte("second"))
	s.Run()
	if string(got) != "first second" {
		t.Fatalf("got %q", got)
	}
	if a.BytesSent != 12 || b.BytesReceived != 12 {
		t.Fatalf("stats: sent=%d rcvd=%d", a.BytesSent, b.BytesReceived)
	}
}

func TestWriteWhileDrainingExtendsQueue(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	var got []byte
	b.SetReceiver(func(c byte) {
		got = append(got, c)
		if len(got) == 1 {
			a.Write([]byte("!"))
		}
	})
	a.Write([]byte("xy"))
	s.Run()
	if string(got) != "xy!" {
		t.Fatalf("got %q, want xy!", got)
	}
}

func TestQueueLenAndDrained(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	b.SetReceiver(func(byte) {})
	a.Write(make([]byte, 10))
	if a.QueueLen() != 10 || a.Drained() {
		t.Fatalf("QueueLen=%d Drained=%v", a.QueueLen(), a.Drained())
	}
	s.RunFor(a.line.ByteTime() * 5)
	if a.QueueLen() != 5 {
		t.Fatalf("QueueLen=%d after 5 byte times, want 5", a.QueueLen())
	}
	s.Run()
	if !a.Drained() {
		t.Fatal("not drained after Run")
	}
}

func TestNoReceiverDropsSilently(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	a.Write([]byte("lost"))
	s.Run()
	if b.BytesReceived != 4 {
		t.Fatalf("BytesReceived=%d, want 4 (counted even when dropped)", b.BytesReceived)
	}
}

func TestCorruptionInjection(t *testing.T) {
	s := sim.NewScheduler(42)
	a, b := NewLine(s, 9600)
	a.line.CorruptRate = 0.5
	var got []byte
	b.SetReceiver(func(c byte) { got = append(got, c) })
	msg := make([]byte, 1000)
	a.Write(msg)
	s.Run()
	if b.Corrupted == 0 {
		t.Fatal("no corruption at rate 0.5")
	}
	diff := 0
	for i := range got {
		if got[i] != msg[i] {
			diff++
		}
	}
	if uint64(diff) != b.Corrupted {
		t.Fatalf("corrupted count %d but %d bytes differ", b.Corrupted, diff)
	}
}

// --- Burst-mode semantics ------------------------------------------------

func TestRunReceiverGetsWholeWrites(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	var runs [][]byte
	var at []sim.Time
	b.SetRunReceiver(func(p []byte) {
		runs = append(runs, append([]byte(nil), p...))
		at = append(at, s.Now())
	})
	a.Write([]byte("first"))
	a.Write([]byte("second!"))
	s.Run()
	if len(runs) != 2 || string(runs[0]) != "first" || string(runs[1]) != "second!" {
		t.Fatalf("runs = %q", runs)
	}
	bt := a.line.ByteTime()
	if want := sim.Time(5 * bt); at[0] != want {
		t.Fatalf("run 1 delivered at %v, want %v (last byte's wire time)", at[0], want)
	}
	if want := sim.Time(12 * bt); at[1] != want {
		t.Fatalf("run 2 delivered at %v, want %v (continuous pacing)", at[1], want)
	}
}

func TestRunReceiverTakesPrecedenceOverByteReceiver(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	byteCalls := 0
	b.SetReceiver(func(byte) { byteCalls++ })
	var got []byte
	b.SetRunReceiver(func(p []byte) { got = append(got, p...) })
	a.Write([]byte("xyz"))
	s.Run()
	if byteCalls != 0 || string(got) != "xyz" {
		t.Fatalf("byteCalls=%d got=%q", byteCalls, got)
	}
}

// QueueLen and Drained must interpolate the drain schedule byte-exactly
// between run events — E2's gateway-backlog probe and the driver's
// output-queue bound both sample them at arbitrary instants.
func TestQueueLenInterpolatesAcrossRuns(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 1200)
	b.SetReceiver(func(byte) {})
	bt := a.line.ByteTime()
	a.Write(make([]byte, 4))
	a.Write(make([]byte, 3)) // second run: bytes 5..7
	for k := 0; k <= 7; k++ {
		s.RunUntil(sim.Time(time.Duration(k)*bt + bt/2)) // halfway into byte k+1
		want := 7 - k
		if k == 7 {
			want = 0
		}
		if got := a.QueueLen(); got != want {
			t.Fatalf("QueueLen at %v = %d, want %d", s.Now(), got, want)
		}
		if drained := a.Drained(); drained != (want == 0) {
			t.Fatalf("Drained at %v = %v with QueueLen %d", s.Now(), drained, want)
		}
	}
}

func TestEmptyWriteIsANoOp(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	b.SetReceiver(func(byte) {})
	drains := 0
	a.OnDrain = func() { drains++ }

	// Empty write on an idle line: no event, no drain edge.
	a.Write(nil)
	a.Write([]byte{})
	s.Run()
	if drains != 0 || s.Pending() != 0 || a.BytesSent != 0 {
		t.Fatalf("empty write had effects: drains=%d pending=%d sent=%d", drains, s.Pending(), a.BytesSent)
	}
	if !a.Drained() {
		t.Fatal("idle line not drained")
	}

	// A real write still fires OnDrain exactly once, and a trailing
	// empty write while drained stays a no-op.
	a.Write([]byte("data"))
	s.Run()
	a.Write(nil)
	s.Run()
	if drains != 1 {
		t.Fatalf("drains = %d, want 1", drains)
	}
}

func TestOnDrainFiresOncePerDrainEdge(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	b.SetReceiver(func(byte) {})
	var edges []sim.Time
	a.OnDrain = func() { edges = append(edges, s.Now()) }
	bt := a.line.ByteTime()

	a.Write([]byte("ab")) // drains at 2·bt
	s.Run()
	a.Write([]byte("c")) // idle restart: drains one byte time later
	s.Run()
	if len(edges) != 2 {
		t.Fatalf("got %d drain edges, want 2: %v", len(edges), edges)
	}
	if edges[0] != sim.Time(2*bt) || edges[1] != edges[0]+sim.Time(bt) {
		t.Fatalf("drain edges at %v", edges)
	}

	// Back-to-back writes while busy coalesce into one final edge.
	edges = nil
	a.Write([]byte("dd"))
	a.Write([]byte("ee"))
	s.Run()
	if len(edges) != 1 {
		t.Fatalf("got %d drain edges for queued writes, want 1", len(edges))
	}
}

// OnDrain must fire after the receiving side has seen the final run —
// the TNC's pump depends on frame-then-drain ordering.
func TestOnDrainOrderedAfterDelivery(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 9600)
	var order []string
	b.SetRunReceiver(func(p []byte) { order = append(order, "rx") })
	a.OnDrain = func() { order = append(order, "drain") }
	a.Write([]byte("zz"))
	s.Run()
	if len(order) != 2 || order[0] != "rx" || order[1] != "drain" {
		t.Fatalf("order = %v, want [rx drain]", order)
	}
}

func TestPerByteFlagRestoresByteEvents(t *testing.T) {
	s := sim.NewScheduler(1)
	a, b := NewLine(s, 1200)
	a.Line().PerByte = true
	var times []sim.Time
	b.SetReceiver(func(byte) { times = append(times, s.Now()) })
	a.Write(make([]byte, 3))
	s.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d bytes, want 3", len(times))
	}
	bt := a.line.ByteTime()
	for i, at := range times {
		if want := sim.Time(time.Duration(i+1) * bt); at != want {
			t.Fatalf("byte %d at %v, want %v", i, at, want)
		}
	}
}

func TestDefaultBaud(t *testing.T) {
	s := sim.NewScheduler(1)
	a, _ := NewLine(s, 0)
	if a.line.Baud() != DefaultBaud {
		t.Fatalf("baud = %d, want %d", a.line.Baud(), DefaultBaud)
	}
}
