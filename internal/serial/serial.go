// Package serial simulates the RS-232 line between the host's DZ serial
// port and the TNC (Figure 1 of the paper). The line is full duplex;
// each direction paces bytes at the configured baud rate (8N1: ten bit
// times per byte) and delivers them to the far end through a receive
// callback — the simulated equivalent of the tty interrupt handler the
// paper's driver hangs off.
//
// # Burst-mode delivery
//
// The seed implementation scheduled one event per byte — a faithful
// copy of the §3 per-character-interrupt pathology, and exactly as
// slow. The default datapath is now burst mode: each Write becomes one
// "run" whose bytes all arrive in a single scheduler event at the
// virtual time the run's last byte finishes serializing. Observable
// timing is unchanged:
//
//   - Byte k of a run written at time t (on an idle line) would have
//     been delivered at t + k·ByteTime; the run event fires at
//     t + n·ByteTime, which is exactly the old delivery time of the
//     final byte. Since every framing protocol layered above (KISS)
//     acts only on its terminating byte, frame completion times are
//     bit-for-bit identical.
//   - QueueLen and Drained interpolate the drain schedule, so a
//     mid-run observer sees the same per-byte backlog decay the
//     per-byte chain produced (E2's congestion probe depends on it).
//   - OnDrain fires in the run event that empties the queue, after the
//     receive callback — the same instant and intra-event order as the
//     old chain's final-byte event.
//   - Corruption draws come from a per-end RNG (seeded from the
//     scheduler at NewLine), one draw per byte in wire order, so
//     corruption is identical whether the bytes are delivered singly
//     or as a run.
//
// Runs split at Write boundaries: the writers in this repository (the
// driver and the KISS TNC) write exactly one KISS frame per call, so a
// run never carries two frame terminators whose handlers would need
// distinct timestamps. The seed per-byte chain is retained behind
// Line.PerByte for equivalence regression tests.
package serial

import (
	"math/rand"
	"time"

	"packetradio/internal/sim"
)

// End is one end of a serial line. Writes queue bytes for paced
// delivery to the peer; received bytes arrive via the receiver callback
// installed with SetReceiver (per byte) or SetRunReceiver (per run).
type End struct {
	line *Line
	peer *End

	rx    func(byte)
	rxRun func([]byte)

	// OnDrain, when set, is invoked each time the transmit queue
	// empties — the "transmit done" interrupt devices use for output
	// flow control. Writing an empty slice never fires it: a zero-byte
	// write on an idle line is a no-op, not a drain edge.
	OnDrain func()

	// queue[head:] holds written-but-undelivered bytes; the backing
	// array is reused once the line drains.
	queue []byte
	head  int

	// runs[runHead:] are the scheduled burst deliveries, oldest first.
	// The front run's bytes are queue[head:head+n].
	runs    []run
	runHead int

	draining  bool   // legacy per-byte chain active
	deliverFn func() // cached bound method, so Write never allocates a closure

	corruptSeed int64
	corruptRNG  *rand.Rand

	// Stats. In burst mode the counters advance when a run is
	// delivered (its last byte's wire time); a mid-run observer should
	// use QueueLen, which interpolates byte-exactly.
	BytesSent     uint64
	BytesReceived uint64
	Corrupted     uint64
}

// run is one scheduled burst: n bytes whose last byte lands at end.
// corrupted counts damaged bytes in the run (0 or 1: runs split at
// corruption points, so only a run's final byte can be the damaged
// one — preserving the exact wire time at which a flipped bit can,
// say, forge a FEND and terminate a KISS frame early).
type run struct {
	n         int
	end       sim.Time
	corrupted uint8
}

// Line is a full-duplex serial link between two Ends.
type Line struct {
	sched *sim.Scheduler
	baud  int

	// CorruptRate is the per-byte probability that a byte is damaged
	// in transit (delivered with a bit flipped). Zero by default. Set
	// it before the first Write; the draw stream is per end, per byte,
	// in wire order.
	CorruptRate float64

	// PerByte reverts the line to the seed's one-event-per-byte
	// delivery chain. It exists for the burst-equivalence regression
	// tests; set it before the first Write and do not toggle it while
	// bytes are in flight.
	PerByte bool

	a, b End
}

// DefaultBaud is the conventional host-TNC line speed. The radio is
// 1200 bps, so 9600 on the wire to the TNC keeps the serial hop from
// being the bottleneck — except when the TNC passes all channel
// traffic up, which is exactly the §3 problem E2 measures.
const DefaultBaud = 9600

// NewLine creates a serial line at the given baud rate and returns its
// two ends.
func NewLine(sched *sim.Scheduler, baud int) (*End, *End) {
	if baud <= 0 {
		baud = DefaultBaud
	}
	l := &Line{sched: sched, baud: baud}
	l.a.line, l.b.line = l, l
	l.a.peer, l.b.peer = &l.b, &l.a
	l.a.deliverFn = l.a.deliverRun
	l.b.deliverFn = l.b.deliverRun
	// Corruption seeds are derived eagerly (and in a fixed order) so
	// the per-end corruption streams depend only on construction
	// order, not on whether delivery is per byte or per run — and
	// deriving (rather than drawing from the shared Rand) leaves the
	// scheduler's main stream exactly as the seed scenarios expect.
	l.a.corruptSeed = sched.DeriveSeed()
	l.b.corruptSeed = sched.DeriveSeed()
	return &l.a, &l.b
}

// ByteTime reports the serialization time of one byte (8N1 framing:
// start bit + 8 data bits + stop bit).
func (l *Line) ByteTime() time.Duration {
	return time.Duration(10 * float64(time.Second) / float64(l.baud))
}

// Baud reports the line speed.
func (l *Line) Baud() int { return l.baud }

// Line reports the line this end belongs to (to set CorruptRate or the
// PerByte regression flag from outside the package).
func (e *End) Line() *Line { return e.line }

// SetReceiver installs the byte-receive callback ("interrupt handler")
// for this end. Bytes that arrive with no receiver installed are
// dropped silently, like characters on a closed tty. When a run
// receiver is also installed, it takes precedence.
func (e *End) SetReceiver(rx func(byte)) { e.rx = rx }

// SetRunReceiver installs the burst receive callback: each delivery
// event hands over the whole run of bytes that finished serializing at
// the current instant. The slice is only valid during the callback
// (the line reuses its backing storage) and may have had corruption
// applied in place. Receivers that only act on framing boundaries —
// the KISS decoder — should use this; it removes the per-byte callback
// overhead that made the serial hop the simulator's hot path.
func (e *End) SetRunReceiver(rx func([]byte)) { e.rxRun = rx }

// Write queues p for transmission to the peer end. It never blocks;
// the simulated UART drains the queue at line speed. The data is
// copied, so the caller may reuse p. Writing an empty slice is a
// complete no-op (no event, no drain edge).
func (e *End) Write(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	e.queue = append(e.queue, p...)
	if e.line.PerByte {
		if !e.draining {
			e.draining = true
			e.line.sched.After(e.line.ByteTime(), e.deliverNext)
		}
		return len(p), nil
	}
	// The new run starts where the previous one ends (continuous
	// pacing), or now on an idle line. n sequential per-byte events
	// each added the same nanosecond-truncated ByteTime, so the run's
	// end is exactly n·ByteTime past its start in both models.
	start := e.line.sched.Now()
	if n := len(e.runs); n > e.runHead {
		start = e.runs[n-1].end
	}
	bt := e.line.ByteTime()
	if e.line.CorruptRate > 0 {
		// Corruption is decided now, in wire order, from the per-end
		// stream (the same draws the per-byte chain makes at delivery
		// time). The write splits into sub-runs at every damaged byte
		// and after its first byte, so each keeps its exact per-byte
		// wire time: a flipped bit can forge a FEND mid-frame, and a
		// destroyed trailing FEND makes the *next* write's leading
		// FEND the frame terminator — both are timing-observable
		// boundaries only a noisy line can create.
		written := e.queue[len(e.queue)-len(p):]
		runStart := 0
		flush := func(endIdx int, corrupted uint8) {
			n := endIdx - runStart
			if n <= 0 {
				return
			}
			start = start.Add(time.Duration(n) * bt)
			e.runs = append(e.runs, run{n: n, end: start, corrupted: corrupted})
			e.line.sched.At(start, e.deliverFn)
			runStart = endIdx
		}
		for i, b := range written {
			if c, hit := e.corrupt(b); hit {
				written[i] = c
				flush(i+1, 1)
			} else if i == 0 {
				flush(1, 0)
			}
		}
		flush(len(written), 0)
		return len(p), nil
	}
	r := run{n: len(p), end: start.Add(time.Duration(len(p)) * bt)}
	e.runs = append(e.runs, r)
	e.line.sched.At(r.end, e.deliverFn)
	return len(p), nil
}

// QueueLen reports bytes written but not yet delivered — the driver's
// view of output-queue backlog (E2 measures this on the gateway). In
// burst mode the value interpolates the drain schedule byte-exactly:
// a byte whose wire time has been reached counts as delivered even if
// the run event carrying it has not yet fired within this instant.
func (e *End) QueueLen() int {
	rem := len(e.queue) - e.head
	if e.runHead >= len(e.runs) {
		return rem
	}
	// Only the front run can be partially drained: every later run
	// starts where it ends.
	r := e.runs[e.runHead]
	wait := r.end.Sub(e.line.sched.Now())
	if wait <= 0 {
		return rem - r.n
	}
	bt := e.line.ByteTime()
	undelivered := int((wait + bt - 1) / bt) // ceil(wait / ByteTime)
	if undelivered > r.n {
		undelivered = r.n // run not started yet
	}
	return rem - (r.n - undelivered)
}

// Drained reports whether all written bytes have been delivered, under
// the same byte-exact interpolation as QueueLen.
func (e *End) Drained() bool { return e.QueueLen() == 0 }

// rng returns the per-end corruption source, built on first use from
// the seed drawn at NewLine.
func (e *End) rng() *rand.Rand {
	if e.corruptRNG == nil {
		e.corruptRNG = rand.New(rand.NewSource(e.corruptSeed))
	}
	return e.corruptRNG
}

// corrupt damages one byte in transit: one Float64 draw per byte, a
// second draw for the flipped bit when the byte is hit — the same
// stream whether bytes are delivered singly or as a run.
func (e *End) corrupt(b byte) (byte, bool) {
	r := e.line.CorruptRate
	if r <= 0 || e.rng().Float64() >= r {
		return b, false
	}
	return b ^ 1<<uint(e.rng().Intn(8)), true
}

// deliverRun fires once per run, at the wire time of its last byte.
func (e *End) deliverRun() {
	r := e.runs[e.runHead]
	e.runHead++
	data := e.queue[e.head : e.head+r.n]
	e.head += r.n
	e.BytesSent += uint64(r.n)
	e.peer.Corrupted += uint64(r.corrupted)
	e.peer.BytesReceived += uint64(r.n)
	switch {
	case e.peer.rxRun != nil:
		e.peer.rxRun(data)
	case e.peer.rx != nil:
		for _, b := range data {
			e.peer.rx(b)
		}
	}
	// The receive callbacks may have queued more runs on this end (a
	// peer writing back within the delivery instant); only a genuinely
	// idle line drains. Resetting after the callbacks also keeps the
	// just-delivered slice valid while the receiver looks at it.
	if e.runHead >= len(e.runs) {
		e.runs = e.runs[:0]
		e.runHead = 0
		e.queue = e.queue[:0]
		e.head = 0
		if e.OnDrain != nil {
			e.OnDrain()
		}
	}
}

// deliverNext is the seed per-byte interrupt chain, kept verbatim
// behind Line.PerByte for the equivalence regression tests.
func (e *End) deliverNext() {
	if e.head >= len(e.queue) {
		e.draining = false
		return
	}
	b := e.queue[e.head]
	e.head++
	e.BytesSent++
	if c, hit := e.corrupt(b); hit {
		b = c
		e.queue[e.head-1] = c
		e.peer.Corrupted++
	}
	e.peer.BytesReceived++
	switch {
	case e.peer.rxRun != nil:
		e.peer.rxRun(e.queue[e.head-1 : e.head])
	case e.peer.rx != nil:
		e.peer.rx(b)
	}
	if e.head < len(e.queue) {
		e.line.sched.After(e.line.ByteTime(), e.deliverNext)
	} else {
		e.queue = e.queue[:0]
		e.head = 0
		e.draining = false
		if e.OnDrain != nil {
			e.OnDrain()
		}
	}
}
