// Package serial simulates the RS-232 line between the host's DZ serial
// port and the TNC (Figure 1 of the paper). The line is full duplex;
// each direction paces bytes at the configured baud rate (8N1: ten bit
// times per byte) and delivers them to the far end one at a time
// through a receive callback — the simulated equivalent of the tty
// interrupt handler the paper's driver hangs off.
package serial

import (
	"time"

	"packetradio/internal/sim"
)

// End is one end of a serial line. Writes queue bytes for paced
// delivery to the peer; received bytes arrive via the receiver callback
// installed with SetReceiver.
type End struct {
	line *Line
	peer *End

	rx func(byte)

	// OnDrain, when set, is invoked each time the transmit queue
	// empties — the "transmit done" interrupt devices use for output
	// flow control.
	OnDrain func()

	queue    []byte
	draining bool

	// Stats.
	BytesSent     uint64
	BytesReceived uint64
	Corrupted     uint64
}

// Line is a full-duplex serial link between two Ends.
type Line struct {
	sched *sim.Scheduler
	baud  int

	// CorruptRate is the per-byte probability that a byte is damaged
	// in transit (delivered with a bit flipped). Zero by default.
	CorruptRate float64

	a, b End
}

// DefaultBaud is the conventional host-TNC line speed. The radio is
// 1200 bps, so 9600 on the wire to the TNC keeps the serial hop from
// being the bottleneck — except when the TNC passes all channel
// traffic up, which is exactly the §3 problem E2 measures.
const DefaultBaud = 9600

// NewLine creates a serial line at the given baud rate and returns its
// two ends.
func NewLine(sched *sim.Scheduler, baud int) (*End, *End) {
	if baud <= 0 {
		baud = DefaultBaud
	}
	l := &Line{sched: sched, baud: baud}
	l.a.line, l.b.line = l, l
	l.a.peer, l.b.peer = &l.b, &l.a
	return &l.a, &l.b
}

// ByteTime reports the serialization time of one byte (8N1 framing:
// start bit + 8 data bits + stop bit).
func (l *Line) ByteTime() time.Duration {
	return time.Duration(10 * float64(time.Second) / float64(l.baud))
}

// Baud reports the line speed.
func (l *Line) Baud() int { return l.baud }

// SetReceiver installs the byte-receive callback ("interrupt handler")
// for this end. Bytes that arrive with no receiver installed are
// dropped silently, like characters on a closed tty.
func (e *End) SetReceiver(rx func(byte)) { e.rx = rx }

// Write queues p for transmission to the peer end. It never blocks;
// the simulated UART drains the queue at line speed. The data is
// copied, so the caller may reuse p.
func (e *End) Write(p []byte) (int, error) {
	e.queue = append(e.queue, p...)
	if !e.draining && len(e.queue) > 0 {
		e.draining = true
		e.line.sched.After(e.line.ByteTime(), e.deliverNext)
	}
	return len(p), nil
}

// QueueLen reports bytes written but not yet delivered — the driver's
// view of output-queue backlog (E2 measures this on the gateway).
func (e *End) QueueLen() int { return len(e.queue) }

// Drained reports whether all written bytes have been delivered.
func (e *End) Drained() bool { return len(e.queue) == 0 }

func (e *End) deliverNext() {
	if len(e.queue) == 0 {
		e.draining = false
		return
	}
	b := e.queue[0]
	e.queue = e.queue[1:]
	e.BytesSent++
	if r := e.line.CorruptRate; r > 0 && e.line.sched.Rand().Float64() < r {
		b ^= 1 << uint(e.line.sched.Rand().Intn(8))
		e.peer.Corrupted++
	}
	e.peer.BytesReceived++
	if e.peer.rx != nil {
		e.peer.rx(b)
	}
	if len(e.queue) > 0 {
		e.line.sched.After(e.line.ByteTime(), e.deliverNext)
	} else {
		e.draining = false
		if e.OnDrain != nil {
			e.OnDrain()
		}
	}
}
