package serial

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"packetradio/internal/kiss"
	"packetradio/internal/sim"
)

// The burst-equivalence regression: identical seeded traffic pushed
// through the seed per-byte event chain and through the burst path must
// produce identical KISS frame sequences, frame-completion timestamps,
// corruption counts, byte counters, drain edges and sampled backlogs.

// equivTrace is everything observable about one run of the scenario.
type equivTrace struct {
	frames     [][]byte
	frameAt    []sim.Time
	drainAt    []sim.Time
	samples    []int
	sent, rcvd uint64
	corrupted  uint64
	events     uint64
}

func runEquivScenario(t *testing.T, seed int64, corruptRate float64, perByte bool) equivTrace {
	t.Helper()
	s := sim.NewScheduler(seed)
	a, b := NewLine(s, 1200)
	a.Line().PerByte = perByte
	a.Line().CorruptRate = corruptRate

	var tr equivTrace
	dec := kiss.Decoder{Frame: func(f kiss.Frame) {
		tr.frames = append(tr.frames, append([]byte{f.Port<<4 | f.Command}, f.Payload...))
		tr.frameAt = append(tr.frameAt, s.Now())
	}}
	// The receiving end decodes per byte in legacy mode and per run in
	// burst mode — the same pairing the driver uses in each mode.
	if perByte {
		b.SetReceiver(dec.PutByte)
	} else {
		b.SetRunReceiver(func(p []byte) { dec.Write(p) })
	}
	a.OnDrain = func() { tr.drainAt = append(tr.drainAt, s.Now()) }

	// Deterministic traffic: frames of varied sizes (with bytes that
	// need KISS escaping) written at irregular instants, some while the
	// line is still draining.
	rng := rand.New(rand.NewSource(seed + 1000))
	at := time.Duration(0)
	for i := 0; i < 40; i++ {
		n := 1 + rng.Intn(120)
		payload := make([]byte, n)
		for j := range payload {
			payload[j] = byte(rng.Intn(256)) // includes FEND/FESC
		}
		frame := kiss.Encode(nil, 0, payload)
		at += time.Duration(rng.Intn(900)) * time.Millisecond
		s.At(sim.Time(at), func() { a.Write(frame) })
	}
	// Backlog samples at instants unrelated to byte boundaries.
	for ms := 37; ms < 45000; ms += 613 {
		s.At(sim.Time(time.Duration(ms)*time.Millisecond), func() {
			tr.samples = append(tr.samples, a.QueueLen())
		})
	}
	s.Run()
	tr.sent, tr.rcvd, tr.corrupted = a.BytesSent, b.BytesReceived, b.Corrupted
	tr.events = s.Fired()
	return tr
}

func diffTraces(t *testing.T, label string, old, burst equivTrace) {
	t.Helper()
	if len(old.frames) != len(burst.frames) {
		t.Fatalf("%s: %d frames per-byte vs %d burst", label, len(old.frames), len(burst.frames))
	}
	for i := range old.frames {
		if !bytes.Equal(old.frames[i], burst.frames[i]) {
			t.Fatalf("%s: frame %d differs:\n per-byte %x\n burst    %x", label, i, old.frames[i], burst.frames[i])
		}
		if old.frameAt[i] != burst.frameAt[i] {
			t.Fatalf("%s: frame %d completed at %v per-byte vs %v burst", label, i, old.frameAt[i], burst.frameAt[i])
		}
	}
	if fmt.Sprint(old.drainAt) != fmt.Sprint(burst.drainAt) {
		t.Fatalf("%s: drain edges differ:\n per-byte %v\n burst    %v", label, old.drainAt, burst.drainAt)
	}
	if fmt.Sprint(old.samples) != fmt.Sprint(burst.samples) {
		t.Fatalf("%s: QueueLen samples differ:\n per-byte %v\n burst    %v", label, old.samples, burst.samples)
	}
	if old.sent != burst.sent || old.rcvd != burst.rcvd {
		t.Fatalf("%s: byte counters differ: sent %d/%d rcvd %d/%d", label, old.sent, burst.sent, old.rcvd, burst.rcvd)
	}
	if old.corrupted != burst.corrupted {
		t.Fatalf("%s: corruption counts differ: %d per-byte vs %d burst", label, old.corrupted, burst.corrupted)
	}
}

func TestBurstEquivalenceCleanLine(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		old := runEquivScenario(t, seed, 0, true)
		burst := runEquivScenario(t, seed, 0, false)
		diffTraces(t, fmt.Sprintf("seed %d", seed), old, burst)
		if old.events <= burst.events {
			t.Fatalf("seed %d: burst fired %d events vs %d per-byte — coalescing is not engaged",
				seed, burst.events, old.events)
		}
	}
}

func TestBurstEquivalenceCorruptedLine(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		old := runEquivScenario(t, seed, 0.002, true)
		burst := runEquivScenario(t, seed, 0.002, false)
		diffTraces(t, fmt.Sprintf("seed %d", seed), old, burst)
	}
	// And at a rate high enough that corruption certainly happened.
	old := runEquivScenario(t, 42, 0.05, true)
	burst := runEquivScenario(t, 42, 0.05, false)
	if old.corrupted == 0 {
		t.Fatal("corruption rate 0.05 produced no corrupted bytes")
	}
	diffTraces(t, "seed 42 heavy", old, burst)
}
