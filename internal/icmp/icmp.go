// Package icmp implements the Internet Control Message Protocol
// messages the reproduction needs — echo, destination unreachable,
// time exceeded, redirect — plus the two experimental messages the
// paper proposes in §4.3 for gateway access control:
//
//	"One message can force an entry to be removed from the table of
//	authorized non-amateur systems. ... Another message would allow one
//	to add an authorized non-amateur host to the tables with an
//	appropriately chosen time-to-live. Both these message are allowed
//	to come from either side of the gateway, but if they come from the
//	non-amateur side, they must include a call sign and a password for
//	an authorized control operator for the gateway."
package icmp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"packetradio/internal/ip"
)

// Message types.
const (
	TypeEchoReply       = 0
	TypeDestUnreachable = 3
	TypeRedirect        = 5
	TypeEcho            = 8
	TypeTimeExceeded    = 11

	// Experimental types for the paper's §4.3 gateway authorization
	// scheme (chosen from the >41 then-unassigned space).
	TypeGatewayAuthAdd = 150
	TypeGatewayAuthDel = 151
)

// Destination-unreachable codes.
const (
	CodeNetUnreachable   = 0
	CodeHostUnreachable  = 1
	CodeProtoUnreachable = 2
	CodePortUnreachable  = 3
	CodeFragNeeded       = 4
	CodeAdminProhibited  = 13 // used when the ACL refuses a packet
)

// Time-exceeded codes.
const (
	CodeTTLExceeded        = 0
	CodeReassemblyExceeded = 1
)

var errShort = errors.New("icmp: truncated message")
var errChecksum = errors.New("icmp: bad checksum")

// Message is a parsed ICMP message. For echo, ID/Seq are meaningful;
// for redirects, Gateway is the better first hop; for errors, Body
// holds the offending header + 8 bytes per RFC 792.
type Message struct {
	Type, Code uint8
	ID, Seq    uint16  // echo only
	Gateway    ip.Addr // redirect only
	Body       []byte
}

// Marshal renders the message with checksum.
func (m *Message) Marshal() []byte {
	buf := make([]byte, 8+len(m.Body))
	buf[0] = m.Type
	buf[1] = m.Code
	switch m.Type {
	case TypeEcho, TypeEchoReply:
		binary.BigEndian.PutUint16(buf[4:], m.ID)
		binary.BigEndian.PutUint16(buf[6:], m.Seq)
	case TypeRedirect:
		copy(buf[4:8], m.Gateway[:])
	}
	copy(buf[8:], m.Body)
	cs := ip.Checksum(buf)
	binary.BigEndian.PutUint16(buf[2:], cs)
	return buf
}

// Unmarshal parses and checksums a message. Body aliases buf.
func Unmarshal(buf []byte) (*Message, error) {
	if len(buf) < 8 {
		return nil, errShort
	}
	if ip.Checksum(buf) != 0 {
		return nil, errChecksum
	}
	m := &Message{Type: buf[0], Code: buf[1], Body: buf[8:]}
	switch m.Type {
	case TypeEcho, TypeEchoReply:
		m.ID = binary.BigEndian.Uint16(buf[4:])
		m.Seq = binary.BigEndian.Uint16(buf[6:])
	case TypeRedirect:
		copy(m.Gateway[:], buf[4:8])
	}
	return m, nil
}

func (m *Message) String() string {
	switch m.Type {
	case TypeEcho:
		return fmt.Sprintf("icmp echo id=%d seq=%d", m.ID, m.Seq)
	case TypeEchoReply:
		return fmt.Sprintf("icmp echo-reply id=%d seq=%d", m.ID, m.Seq)
	case TypeDestUnreachable:
		return fmt.Sprintf("icmp unreachable code=%d", m.Code)
	case TypeTimeExceeded:
		return fmt.Sprintf("icmp time-exceeded code=%d", m.Code)
	case TypeRedirect:
		return fmt.Sprintf("icmp redirect code=%d", m.Code)
	case TypeGatewayAuthAdd:
		return "icmp gateway-auth-add"
	case TypeGatewayAuthDel:
		return "icmp gateway-auth-del"
	}
	return fmt.Sprintf("icmp type=%d code=%d", m.Type, m.Code)
}

// NewEcho builds an echo request carrying payload.
func NewEcho(id, seq uint16, payload []byte) *Message {
	return &Message{Type: TypeEcho, ID: id, Seq: seq, Body: payload}
}

// NewEchoReply builds the reply to an echo request, echoing its body.
func NewEchoReply(req *Message) *Message {
	return &Message{Type: TypeEchoReply, ID: req.ID, Seq: req.Seq, Body: req.Body}
}

// NewError builds an ICMP error quoting the offending datagram's
// header plus the first 8 payload bytes, per RFC 792.
func NewError(typ, code uint8, offending *ip.Packet) *Message {
	quoted, err := quoteDatagram(offending)
	if err != nil {
		quoted = nil
	}
	return &Message{Type: typ, Code: code, Body: quoted}
}

func quoteDatagram(p *ip.Packet) ([]byte, error) {
	q := *p
	if len(q.Payload) > 8 {
		q.Payload = q.Payload[:8]
	}
	return q.Marshal()
}

// QuotedHeader recovers the offending datagram header from an ICMP
// error body, so transports can match errors to connections.
func QuotedHeader(m *Message) (*ip.Packet, bool) {
	p, err := ip.Unmarshal(m.Body)
	if err != nil {
		return nil, false
	}
	return p, true
}

// --- §4.3 gateway authorization messages ------------------------------

// CallsignLen and PasswordLen fix the authenticator field sizes.
const (
	CallsignLen = 10
	PasswordLen = 10
)

// AuthPayload is the body of a TypeGatewayAuthAdd/Del message.
//
// Wire layout (all big endian):
//
//	0:4   TTL seconds (add only; ignored for del)
//	4:8   amateur-side host address
//	8:12  non-amateur-side host address
//	12:22 control-operator callsign (NUL padded)
//	22:32 password (NUL padded)
//
// The callsign/password pair is required only when the message arrives
// from the non-amateur side; amateur-side control operators are
// authenticated by their link-layer callsign (they are licensed
// operators transmitting under their own call).
type AuthPayload struct {
	TTLSeconds uint32
	Amateur    ip.Addr
	NonAmateur ip.Addr
	Callsign   string
	Password   string
}

// Marshal renders the payload.
func (a *AuthPayload) Marshal() []byte {
	buf := make([]byte, 12+CallsignLen+PasswordLen)
	binary.BigEndian.PutUint32(buf[0:], a.TTLSeconds)
	copy(buf[4:8], a.Amateur[:])
	copy(buf[8:12], a.NonAmateur[:])
	copy(buf[12:12+CallsignLen], a.Callsign)
	copy(buf[12+CallsignLen:], a.Password)
	return buf
}

// UnmarshalAuth parses an auth payload.
func UnmarshalAuth(body []byte) (*AuthPayload, error) {
	if len(body) < 12+CallsignLen+PasswordLen {
		return nil, errShort
	}
	a := &AuthPayload{TTLSeconds: binary.BigEndian.Uint32(body[0:])}
	copy(a.Amateur[:], body[4:8])
	copy(a.NonAmateur[:], body[8:12])
	a.Callsign = strings.TrimRight(string(body[12:12+CallsignLen]), "\x00")
	a.Password = strings.TrimRight(string(body[12+CallsignLen:12+CallsignLen+PasswordLen]), "\x00")
	return a, nil
}

// NewAuthAdd builds the §4.3 "add an authorized non-amateur host"
// message.
func NewAuthAdd(p *AuthPayload) *Message {
	return &Message{Type: TypeGatewayAuthAdd, Body: p.Marshal()}
}

// NewAuthDel builds the §4.3 "force an entry to be removed" message —
// the amateur operator's control-operator cutoff.
func NewAuthDel(p *AuthPayload) *Message {
	return &Message{Type: TypeGatewayAuthDel, Body: p.Marshal()}
}
