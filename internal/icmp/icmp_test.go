package icmp

import (
	"bytes"
	"testing"
	"testing/quick"

	"packetradio/internal/ip"
)

func TestEchoRoundTrip(t *testing.T) {
	m := NewEcho(0x1234, 7, []byte("ping payload"))
	buf := m.Marshal()
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeEcho || got.ID != 0x1234 || got.Seq != 7 || !bytes.Equal(got.Body, m.Body) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestEchoReplyEchoesBody(t *testing.T) {
	req := NewEcho(1, 2, []byte("abc"))
	rep := NewEchoReply(req)
	if rep.Type != TypeEchoReply || rep.ID != 1 || rep.Seq != 2 || !bytes.Equal(rep.Body, req.Body) {
		t.Fatalf("reply: %+v", rep)
	}
}

func TestChecksumValidation(t *testing.T) {
	buf := NewEcho(1, 1, []byte("x")).Marshal()
	buf[8] ^= 0xFF
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("corrupted message accepted")
	}
	if _, err := Unmarshal(buf[:4]); err == nil {
		t.Fatal("short message accepted")
	}
}

func TestErrorQuotesOffendingDatagram(t *testing.T) {
	off := &ip.Packet{
		Header: ip.Header{
			ID: 9, TTL: 1, Proto: ip.ProtoTCP,
			Src: ip.MustAddr("128.95.1.2"), Dst: ip.MustAddr("44.24.0.5"),
		},
		Payload: []byte("0123456789ABCDEF"), // only first 8 quoted
	}
	m := NewError(TypeTimeExceeded, CodeTTLExceeded, off)
	buf := m.Marshal()
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := QuotedHeader(got)
	if !ok {
		t.Fatal("quoted header unparseable")
	}
	if q.Src != off.Src || q.Dst != off.Dst || q.Proto != off.Proto || q.ID != off.ID {
		t.Fatalf("quoted header mismatch: %+v", q)
	}
	if len(q.Payload) != 8 || !bytes.Equal(q.Payload, []byte("01234567")) {
		t.Fatalf("quoted payload = %q, want first 8 bytes", q.Payload)
	}
}

func TestQuotedHeaderRejectsGarbage(t *testing.T) {
	m := &Message{Type: TypeDestUnreachable, Body: []byte{1, 2, 3}}
	if _, ok := QuotedHeader(m); ok {
		t.Fatal("garbage body accepted as quoted header")
	}
}

func TestAuthPayloadRoundTrip(t *testing.T) {
	p := &AuthPayload{
		TTLSeconds: 600,
		Amateur:    ip.MustAddr("44.24.0.5"),
		NonAmateur: ip.MustAddr("128.95.1.2"),
		Callsign:   "N7AKR",
		Password:   "s3cret",
	}
	m := NewAuthAdd(p)
	if m.Type != TypeGatewayAuthAdd {
		t.Fatalf("type = %d", m.Type)
	}
	buf := m.Marshal()
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalAuth(got.Body)
	if err != nil {
		t.Fatal(err)
	}
	if *q != *p {
		t.Fatalf("auth round trip: %+v != %+v", q, p)
	}
}

func TestAuthDelType(t *testing.T) {
	m := NewAuthDel(&AuthPayload{Callsign: "KB7DZ"})
	if m.Type != TypeGatewayAuthDel {
		t.Fatalf("type = %d", m.Type)
	}
}

func TestUnmarshalAuthShort(t *testing.T) {
	if _, err := UnmarshalAuth(make([]byte, 10)); err == nil {
		t.Fatal("short auth payload accepted")
	}
}

func TestAuthFieldTruncation(t *testing.T) {
	p := &AuthPayload{Callsign: "TOOLONGCALLSIGN", Password: "averyverylongpassword"}
	q, err := UnmarshalAuth(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Callsign) != CallsignLen || len(q.Password) != PasswordLen {
		t.Fatalf("fields not truncated: %q %q", q.Callsign, q.Password)
	}
}

func TestMessageStrings(t *testing.T) {
	cases := map[string]*Message{
		"icmp echo id=1 seq=2":       NewEcho(1, 2, nil),
		"icmp echo-reply id=1 seq=2": {Type: TypeEchoReply, ID: 1, Seq: 2},
		"icmp unreachable code=1":    {Type: TypeDestUnreachable, Code: 1},
		"icmp time-exceeded code=0":  {Type: TypeTimeExceeded},
		"icmp redirect code=1":       {Type: TypeRedirect, Code: 1},
		"icmp gateway-auth-add":      {Type: TypeGatewayAuthAdd},
		"icmp gateway-auth-del":      {Type: TypeGatewayAuthDel},
		"icmp type=42 code=3":        {Type: 42, Code: 3},
	}
	for want, m := range cases {
		if got := m.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(typ, code uint8, id, seq uint16, body []byte) bool {
		m := &Message{Type: typ, Code: code, ID: id, Seq: seq, Body: body}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		if got.Type != typ || got.Code != code || !bytes.Equal(got.Body, body) {
			return false
		}
		if typ == TypeEcho || typ == TypeEchoReply {
			return got.ID == id && got.Seq == seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
