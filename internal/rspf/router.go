package rspf

import (
	"sort"
	"time"

	"packetradio/internal/ip"
	"packetradio/internal/ipstack"
	"packetradio/internal/route"
	"packetradio/internal/sim"
	"packetradio/internal/socket"
)

// DefaultOwner tags the routes this daemon installs in route.Table.
const DefaultOwner = "rspf"

// Config tunes a Router. Zero values select defaults sized for the
// 1200 bps channel: timers are long because every hello costs ~0.4 s
// of airtime there, and a chatty routing protocol would eat the very
// capacity it is supposed to manage (E12 quantifies this).
type Config struct {
	HelloInterval   time.Duration // adjacency probe period (default 30 s)
	DeadInterval    time.Duration // silence before a neighbor is dead (default 4× hello)
	RefreshInterval time.Duration // periodic LSA re-origination (default 10 min)
	MaxAge          time.Duration // LSA lifetime without refresh (default 3× refresh)
	SPFHold         time.Duration // batching delay before SPF / re-origination (default 1 s)
	FloodJitter     time.Duration // max random delay before each flood send (default 2 s)
	RefBitRate      int           // bit rate that costs 1 (default 10 Mb/s, Ethernet)
	Owner           string        // routing-table owner tag (default "rspf")
}

func (c Config) withDefaults() Config {
	if c.HelloInterval <= 0 {
		c.HelloInterval = 30 * time.Second
	}
	if c.DeadInterval <= 0 {
		c.DeadInterval = c.HelloInterval * 4
	}
	if c.RefreshInterval <= 0 {
		c.RefreshInterval = 10 * time.Minute
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 3 * c.RefreshInterval
	}
	if c.SPFHold <= 0 {
		c.SPFHold = time.Second
	}
	if c.FloodJitter <= 0 {
		c.FloodJitter = 2 * time.Second
	}
	if c.RefBitRate <= 0 {
		c.RefBitRate = 10_000_000
	}
	if c.Owner == "" {
		c.Owner = DefaultOwner
	}
	return c
}

// Stats counts daemon events.
type Stats struct {
	HellosSent      uint64
	HellosRecv      uint64
	LSAsOriginated  uint64
	LSAsRecv        uint64
	LSAsFlooded     uint64 // adopted and re-flooded
	LSAsDuplicate   uint64 // received but not newer than stored
	SPFRuns         uint64
	AdjUp           uint64
	AdjDown         uint64
	BytesSent       uint64
	RoutesInstalled int // size of the last SPF's route set (gauge)
}

// neighbor is one adjacency on one interface.
type neighbor struct {
	id        ip.Addr
	addr      ip.Addr // source address of its hellos (the next hop)
	ifName    string
	lastHeard sim.Time
	lastSeq   uint32
	expected  uint32 // hello-loss window: hellos the seq numbers imply
	received  uint32 // hellos actually heard
	twoWay    bool
}

// lossFraction estimates link loss from the hello window, quantized
// into coarse buckets (0, ¼, ½, ¾, 1). The quantization is hysteresis:
// losing one hello out of ten must not change the advertised cost, or
// every wobble of the estimate re-originates an LSA and the routing
// protocol's own flood traffic congests the channel it is measuring.
// It reports 0 until at least four hellos are expected, so a fresh
// adjacency is not priced by noise.
func (n *neighbor) lossFraction() float64 {
	if n.expected < 4 {
		return 0
	}
	loss := 1 - float64(n.received)/float64(n.expected)
	switch {
	case loss < 0.2:
		return 0
	case loss < 0.45:
		return 0.25
	case loss < 0.7:
		return 0.5
	case loss < 0.9:
		return 0.75
	default:
		return 1
	}
}

// NeighborInfo is a snapshot of one adjacency for tests and
// experiments.
type NeighborInfo struct {
	ID        ip.Addr
	Addr      ip.Addr
	IfName    string
	TwoWay    bool
	Cost      uint16
	LastHeard sim.Time
}

// Router is one per-stack RSPF daemon.
type Router struct {
	Cfg   Config
	Stats Stats

	stack *ipstack.Stack
	sched *sim.Scheduler
	id    ip.Addr

	bitRate  map[string]int                   // per-interface channel bit rate
	nbrs     map[string]map[ip.Addr]*neighbor // ifName -> router ID -> adjacency
	db       *Database
	seq      uint32
	helloSeq map[string]uint32

	// staleResp rate-limits stale-LSA responses per originating
	// router (restart recovery needs one response, not a chorus).
	staleResp map[ip.Addr]sim.Time

	running       bool
	sock          *socket.Socket // SOCK_RAW for protocol 73
	helloEv       *sim.Event
	refreshEv     *sim.Event
	deadTicker    *sim.Ticker
	spfPending    bool
	originPending bool
}

// New builds a daemon over st. Attach all interfaces before calling
// Start; the router ID is the stack's primary address.
func New(st *ipstack.Stack, cfg Config) *Router {
	return &Router{
		Cfg:       cfg.withDefaults(),
		stack:     st,
		sched:     st.Sched,
		bitRate:   make(map[string]int),
		nbrs:      make(map[string]map[ip.Addr]*neighbor),
		db:        NewDatabase(),
		helloSeq:  make(map[string]uint32),
		staleResp: make(map[ip.Addr]sim.Time),
	}
}

// SetBitRate declares the channel bit rate behind an interface, from
// which the base link cost is derived (RefBitRate/bps). Interfaces
// without a declared rate cost 1, appropriate for Ethernet.
func (r *Router) SetBitRate(ifName string, bps int) {
	if bps > 0 {
		r.bitRate[ifName] = bps
	}
}

// ID reports the router ID (valid after Start).
func (r *Router) ID() ip.Addr { return r.id }

// Database exposes the LSDB for tests and experiments.
func (r *Router) Database() *Database { return r.db }

// Neighbors snapshots the adjacencies, sorted by interface then ID.
func (r *Router) Neighbors() []NeighborInfo {
	var out []NeighborInfo
	for _, ifName := range r.ifNames() {
		for _, id := range r.nbrIDs(ifName) {
			n := r.nbrs[ifName][id]
			out = append(out, NeighborInfo{
				ID: n.id, Addr: n.addr, IfName: n.ifName,
				TwoWay: n.twoWay, Cost: r.linkCost(n), LastHeard: n.lastHeard,
			})
		}
	}
	return out
}

// Start opens the daemon's raw socket (SOCK_RAW, protocol 73 — like
// the real RSPF daemon, it needs no kernel support beyond raw IP),
// announces ourselves, and begins the hello/refresh timer chains.
// Each timer period is jittered ±10% from the scheduler's seeded
// random source so co-located routers desynchronize deterministically.
func (r *Router) Start() {
	if r.running {
		return
	}
	sock, err := socket.NewRaw(r.stack, Proto)
	if err != nil {
		// Protocol 73 is already claimed on this stack; a silently
		// dead routing daemon would be undebuggable, so fail loudly.
		panic("rspf: " + r.stack.Hostname + ": " + err.Error())
	}
	r.sock = sock
	socket.PumpDatagrams(sock, r.input)
	r.running = true
	r.id = r.stack.Addr()
	r.originate()
	r.sendHellos()
	r.scheduleHello()
	r.scheduleRefresh()
	r.deadTicker = r.sched.Every(r.Cfg.HelloInterval, r.deadScan)
}

// Stop halts the daemon and withdraws every route it installed.
func (r *Router) Stop() {
	if !r.running {
		return
	}
	r.running = false
	r.sock.Close() // releases protocol 73 for a future Start
	r.sock = nil
	r.sched.Cancel(r.helloEv)
	r.sched.Cancel(r.refreshEv)
	r.deadTicker.Stop()
	r.stack.Routes.WithdrawOwner(r.Cfg.Owner)
	r.Stats.RoutesInstalled = 0
}

func (r *Router) jittered(d time.Duration) time.Duration {
	f := 0.9 + 0.2*r.sched.Rand().Float64()
	return time.Duration(float64(d) * f)
}

func (r *Router) scheduleHello() {
	r.helloEv = r.sched.After(r.jittered(r.Cfg.HelloInterval), func() {
		if !r.running {
			return
		}
		r.sendHellos()
		r.scheduleHello()
	})
}

func (r *Router) scheduleRefresh() {
	r.refreshEv = r.sched.After(r.jittered(r.Cfg.RefreshInterval), func() {
		if !r.running {
			return
		}
		r.db.Purge(r.sched.Now().Add(-r.Cfg.MaxAge), r.id)
		r.originate()
		r.scheduleRefresh()
	})
}

// ifNames is the deterministic interface iteration order.
func (r *Router) ifNames() []string { return r.stack.IfNames() }

func (r *Router) nbrIDs(ifName string) []ip.Addr {
	m := r.nbrs[ifName]
	ids := make([]ip.Addr, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Uint32() < ids[j].Uint32() })
	return ids
}

// --- Hello / adjacency --------------------------------------------------

func (r *Router) sendHellos() {
	now := r.sched.Now()
	for _, ifName := range r.ifNames() {
		var heard []ip.Addr
		for _, id := range r.nbrIDs(ifName) {
			if now.Sub(r.nbrs[ifName][id].lastHeard) <= r.Cfg.DeadInterval {
				heard = append(heard, id)
			}
		}
		r.helloSeq[ifName]++
		h := &Hello{Router: r.id, Seq: r.helloSeq[ifName], Heard: heard}
		r.send(ifName, h.Marshal())
		r.Stats.HellosSent++
	}
}

func (r *Router) send(ifName string, payload []byte) {
	r.Stats.BytesSent += uint64(len(payload))
	_ = r.sock.SendVia(ifName, ip.Limited, payload)
}

func (r *Router) input(d socket.Datagram) {
	if !r.running || d.Src == r.id {
		return
	}
	msg, err := Decode(d.Data)
	if err != nil {
		return
	}
	switch m := msg.(type) {
	case *Hello:
		r.handleHello(m, d.Src, d.IfName)
	case *LSA:
		r.handleLSA(m, d.IfName)
	}
}

func (r *Router) handleHello(h *Hello, src ip.Addr, ifName string) {
	if h.Router == r.id {
		return
	}
	r.Stats.HellosRecv++
	m := r.nbrs[ifName]
	if m == nil {
		m = make(map[ip.Addr]*neighbor)
		r.nbrs[ifName] = m
	}
	n, ok := m[h.Router]
	if !ok {
		n = &neighbor{id: h.Router, ifName: ifName, lastSeq: h.Seq}
		m[h.Router] = n
	} else {
		// Advance the loss window by the sequence gap; decay it so old
		// loss fades and a healed link's cost recovers.
		delta := h.Seq - n.lastSeq
		if delta == 0 || delta > 64 {
			delta = 1
		}
		n.expected += delta
		n.received++
		if n.expected > 32 {
			n.expected /= 2
			n.received /= 2
		}
	}
	n.addr = src
	n.lastSeq = h.Seq
	n.lastHeard = r.sched.Now()
	wasTwoWay := n.twoWay
	n.twoWay = false
	for _, id := range h.Heard {
		if id == r.id {
			n.twoWay = true
			break
		}
	}
	if n.twoWay != wasTwoWay {
		if n.twoWay {
			r.Stats.AdjUp++
		} else {
			r.Stats.AdjDown++
		}
		r.scheduleOriginate()
	}
}

// currentLinkCosts computes the cost to advertise for each two-way
// neighbor: the cheapest link when a router is heard on several
// interfaces. runSPF's first-hop selection applies the same
// cheapest-link rule, so forwarding always uses the link these
// advertised metrics were priced on.
func (r *Router) currentLinkCosts() map[ip.Addr]uint16 {
	costs := make(map[ip.Addr]uint16)
	for _, ifName := range r.ifNames() {
		for _, id := range r.nbrIDs(ifName) {
			n := r.nbrs[ifName][id]
			if !n.twoWay {
				continue
			}
			c := r.linkCost(n)
			if old, ok := costs[id]; !ok || c < old {
				costs[id] = c
			}
		}
	}
	return costs
}

// deadScan expires silent neighbors. Only an adjacency change
// triggers immediate re-origination; a drifted link cost waits for
// the periodic refresh. Re-originating on drift couples the estimator
// to the congestion it measures — collisions shift a loss bucket, the
// new LSA floods, the floods collide, loss rises further — and the
// channel locks into saturation. Deferring cost updates to the
// refresh breaks that loop while the critical signal (a dead or new
// neighbor) still propagates at once.
func (r *Router) deadScan() {
	if !r.running {
		return
	}
	now := r.sched.Now()
	changed := false
	for _, ifName := range r.ifNames() {
		for _, id := range r.nbrIDs(ifName) {
			n := r.nbrs[ifName][id]
			if now.Sub(n.lastHeard) > r.Cfg.DeadInterval {
				delete(r.nbrs[ifName], id)
				if n.twoWay {
					r.Stats.AdjDown++
					changed = true
				}
			}
		}
	}
	if changed {
		r.scheduleOriginate()
	}
}

// --- Costs --------------------------------------------------------------

// ifCost is the loss-free cost of an interface: RefBitRate divided by
// the channel bit rate, so a 10 Mb/s Ethernet hop costs 1 and a 1200
// bps radio hop costs ~8333 — Dijkstra then prefers any Ethernet
// detour over an extra radio hop, which is exactly right at these
// speeds.
func (r *Router) ifCost(ifName string) uint16 {
	bps, ok := r.bitRate[ifName]
	if !ok {
		return 1
	}
	c := r.Cfg.RefBitRate / bps
	if c < 1 {
		c = 1
	}
	if c > 60000 {
		c = 60000
	}
	return uint16(c)
}

// linkCost degrades the interface cost by observed hello loss: a link
// dropping half its hellos costs double, so SPF routes around flaky
// RF paths before they die completely.
func (r *Router) linkCost(n *neighbor) uint16 {
	c := float64(r.ifCost(n.ifName)) * (1 + 2*n.lossFraction())
	if c > 60000 {
		c = 60000
	}
	if c < 1 {
		c = 1
	}
	return uint16(c)
}

// --- Origination and flooding -------------------------------------------

func (r *Router) scheduleOriginate() {
	if r.originPending {
		return
	}
	r.originPending = true
	r.sched.After(r.Cfg.SPFHold, func() {
		r.originPending = false
		if r.running {
			r.originate()
		}
	})
}

// originate rebuilds our own LSA from live two-way adjacencies and
// attached networks, installs it, and floods it.
func (r *Router) originate() {
	r.seq++
	l := &LSA{Router: r.id, Seq: r.seq}
	costs := r.currentLinkCosts()
	for id, c := range costs {
		l.Links = append(l.Links, Link{Neighbor: id, Cost: c})
	}
	sort.Slice(l.Links, func(i, j int) bool {
		return l.Links[i].Neighbor.Uint32() < l.Links[j].Neighbor.Uint32()
	})
	// Advertise attached networks: each connected prefix at the
	// interface cost, plus our own addresses as free /32 stubs so
	// hosts stay reachable by exact match when they roam off their
	// home network (MoveHost mobility).
	seen := make(map[Network]bool)
	for _, ifName := range r.ifNames() {
		addr, mask, ok := r.stack.IfAddr(ifName)
		if !ok {
			continue
		}
		net := Network{Prefix: mask.Apply(addr), Mask: mask, Cost: r.ifCost(ifName)}
		if !seen[net] {
			seen[net] = true
			l.Networks = append(l.Networks, net)
		}
		stub := Network{Prefix: addr, Mask: ip.MaskHost, Cost: 0}
		if !seen[stub] {
			seen[stub] = true
			l.Networks = append(l.Networks, stub)
		}
	}
	r.Stats.LSAsOriginated++
	r.db.Install(l, r.sched.Now())
	r.flood(l)
	r.scheduleSPF()
}

// flood re-broadcasts an adopted LSA on every interface — including
// the arrival interface, because on a radio channel with hidden
// terminals the stations behind us can only learn the LSA from our
// re-broadcast. Duplicate floods die at the sequence-number check.
// Each send is delayed by an independent random jitter: when one
// broadcast reaches several stations they all adopt in the same
// instant, and un-jittered refloods would collide with near
// certainty, destroying the hellos that keep adjacencies alive.
func (r *Router) flood(l *LSA) {
	buf := l.Marshal()
	for _, name := range r.ifNames() {
		ifName := name
		d := time.Duration(r.sched.Rand().Float64() * float64(r.Cfg.FloodJitter))
		r.sched.After(d, func() {
			if r.running {
				r.send(ifName, buf)
			}
		})
	}
}

func (r *Router) handleLSA(l *LSA, ifName string) {
	r.Stats.LSAsRecv++
	if l.Router == r.id {
		// An echo of our own advertisement. Neighbors reflooding our
		// current LSA is normal; only a strictly newer copy (we
		// restarted and the network outlived us) makes us jump past
		// it and re-announce.
		if l.Seq > r.seq {
			r.seq = l.Seq
			r.scheduleOriginate()
		}
		return
	}
	if !r.db.Install(l.Clone(), r.sched.Now()) {
		r.Stats.LSAsDuplicate++
		// Far behind our copy means the sender restarted and is
		// re-announcing from seq 1: flood the newer stored copy back
		// so it hears its own old advertisement and jumps its
		// sequence past it. Two rate limits keep this from feeding
		// back into congestion: a gap of one is just flood jitter
		// reordering two back-to-back originations (silence), and
		// each router gets at most one response per dead interval —
		// on a saturated channel refloods arrive seconds late and
		// look ancient, and an uncapped response per stale copy
		// re-saturates the channel that delayed them.
		now := r.sched.Now()
		if stored, ok := r.db.Get(l.Router); ok && stored.Seq > l.Seq+1 {
			if last, seen := r.staleResp[l.Router]; !seen || now.Sub(last) > r.Cfg.DeadInterval {
				r.staleResp[l.Router] = now
				r.flood(stored)
			}
		}
		return
	}
	r.Stats.LSAsFlooded++
	r.flood(l)
	r.scheduleSPF()
}

// --- SPF and route installation -----------------------------------------

func (r *Router) scheduleSPF() {
	if r.spfPending {
		return
	}
	r.spfPending = true
	r.sched.After(r.Cfg.SPFHold, func() {
		r.spfPending = false
		if r.running {
			r.runSPF()
		}
	})
}

// runSPF recomputes shortest paths and atomically replaces our routes:
// one route per advertised network, via the first-hop neighbor of the
// cheapest advertising router.
func (r *Router) runSPF() {
	r.Stats.SPFRuns++
	paths := r.db.ShortestPaths(r.id)

	// Resolve first-hop router IDs to (interface, next-hop address)
	// through the live adjacencies, choosing the cheapest link when a
	// neighbor is reachable on several interfaces — the same
	// selection currentLinkCosts advertised, so forwarding uses the
	// link SPF actually priced.
	type hop struct {
		ifName string
		addr   ip.Addr
		cost   uint16
	}
	adj := make(map[ip.Addr]hop)
	for _, ifName := range r.ifNames() {
		for _, id := range r.nbrIDs(ifName) {
			n := r.nbrs[ifName][id]
			if !n.twoWay {
				continue
			}
			c := r.linkCost(n)
			if old, ok := adj[id]; !ok || c < old.cost {
				adj[id] = hop{ifName: ifName, addr: n.addr, cost: c}
			}
		}
	}

	// Networks we are attached to ourselves are served by connected
	// routes; never shadow them.
	attached := make(map[Network]bool)
	for _, ifName := range r.ifNames() {
		if addr, mask, ok := r.stack.IfAddr(ifName); ok {
			attached[Network{Prefix: mask.Apply(addr), Mask: mask}] = true
			attached[Network{Prefix: addr, Mask: ip.MaskHost}] = true
		}
	}

	type cand struct {
		dist  uint32
		entry *route.Entry
	}
	best := make(map[Network]cand)
	for _, id := range r.db.IDs() {
		if id == r.id {
			continue
		}
		p, reachable := paths[id]
		if !reachable {
			continue
		}
		via, ok := adj[p.FirstHop]
		if !ok {
			continue
		}
		lsa, _ := r.db.Get(id)
		for _, net := range lsa.Networks {
			key := Network{Prefix: net.Prefix, Mask: net.Mask}
			if attached[key] {
				continue
			}
			if net.Mask == ip.MaskHost && net.Prefix == via.addr {
				continue // "X via X": the connected route already wins
			}
			total := p.Dist + uint32(net.Cost)
			if old, ok := best[key]; ok && old.dist <= total {
				continue
			}
			flags := route.FlagGateway
			if net.Mask == ip.MaskHost {
				flags |= route.FlagHost
			}
			best[key] = cand{dist: total, entry: &route.Entry{
				Dest: net.Prefix, Mask: net.Mask, Gateway: via.addr,
				IfName: via.ifName, Flags: flags, Metric: total,
			}}
		}
	}

	entries := make([]*route.Entry, 0, len(best))
	for _, c := range best {
		entries = append(entries, c.entry)
	}
	sort.Slice(entries, func(i, j int) bool {
		bi, bj := entries[i].Mask.Bits(), entries[j].Mask.Bits()
		if bi != bj {
			return bi > bj
		}
		return entries[i].Dest.Uint32() < entries[j].Dest.Uint32()
	})
	r.Stats.RoutesInstalled = r.stack.Routes.ReplaceOwned(r.Cfg.Owner, entries)
}
