// Package rspf is a Radio-Shortest-Path-First style link-state routing
// daemon — the amateur-radio community's answer to the paper's §4.2
// problem, that classful routing forces all AMPRnet traffic through a
// single static gateway. Each router probes adjacency with periodic
// hellos, floods link-state advertisements describing its neighbors
// and attached networks, runs Dijkstra with radio-aware link costs
// (channel bit rate degraded by observed hello loss), and installs the
// resulting next hops into the kernel routing table as dynamic routes.
//
// The protocol rides directly on IP with its own protocol number (73,
// the number IANA assigned to the real RSPF), using the stack's raw
// per-interface send hook: a routing daemon cannot depend on the very
// routing table it populates. All timers draw jitter from the
// simulation's seeded random source, and every internal iteration is
// over sorted keys, so entire convergence histories are bit-for-bit
// reproducible for a fixed seed.
package rspf

import (
	"encoding/binary"
	"errors"
	"fmt"

	"packetradio/internal/ip"
)

// Proto is the IP protocol number RSPF datagrams are carried in.
const Proto = 73

// Version is the wire-format version.
const Version = 1

// Message type octets.
const (
	msgHello = 1
	msgLSA   = 2
)

// Hello is the periodic per-interface adjacency probe. Heard lists the
// router IDs recently received on the same interface so the receiver
// can confirm two-way connectivity; Seq increases by one per hello per
// interface so receivers can estimate link loss from sequence gaps.
type Hello struct {
	Router ip.Addr // originator's router ID
	Seq    uint32
	Heard  []ip.Addr
}

// Link is one router-to-router adjacency in an LSA, with the
// originator's cost for reaching that neighbor.
type Link struct {
	Neighbor ip.Addr
	Cost     uint16
}

// Network is one directly attached IP network (or /32 host stub) in an
// LSA, with the cost of the attaching interface.
type Network struct {
	Prefix ip.Addr
	Mask   ip.Mask
	Cost   uint16
}

// LSA is a link-state advertisement: the full local view of one
// router, flooded to every other router. Higher Seq supersedes.
type LSA struct {
	Router   ip.Addr
	Seq      uint32
	Links    []Link
	Networks []Network
}

// Wire-format errors.
var (
	ErrTruncated  = errors.New("rspf: truncated message")
	ErrBadVersion = errors.New("rspf: unknown version")
	ErrBadType    = errors.New("rspf: unknown message type")
)

// Marshal encodes the hello.
func (h *Hello) Marshal() []byte {
	buf := make([]byte, 0, 12+4*len(h.Heard))
	buf = append(buf, Version, msgHello)
	buf = append(buf, h.Router[:]...)
	buf = binary.BigEndian.AppendUint32(buf, h.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.Heard)))
	for _, id := range h.Heard {
		buf = append(buf, id[:]...)
	}
	return buf
}

// Marshal encodes the LSA.
func (l *LSA) Marshal() []byte {
	buf := make([]byte, 0, 14+6*len(l.Links)+10*len(l.Networks))
	buf = append(buf, Version, msgLSA)
	buf = append(buf, l.Router[:]...)
	buf = binary.BigEndian.AppendUint32(buf, l.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(l.Links)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(l.Networks)))
	for _, ln := range l.Links {
		buf = append(buf, ln.Neighbor[:]...)
		buf = binary.BigEndian.AppendUint16(buf, ln.Cost)
	}
	for _, n := range l.Networks {
		buf = append(buf, n.Prefix[:]...)
		buf = append(buf, n.Mask[:]...)
		buf = binary.BigEndian.AppendUint16(buf, n.Cost)
	}
	return buf
}

// Clone deep-copies the LSA (floods hand the same LSA to many
// consumers).
func (l *LSA) Clone() *LSA {
	c := *l
	c.Links = append([]Link(nil), l.Links...)
	c.Networks = append([]Network(nil), l.Networks...)
	return &c
}

func (l *LSA) String() string {
	return fmt.Sprintf("lsa(%s seq=%d links=%d nets=%d)", l.Router, l.Seq, len(l.Links), len(l.Networks))
}

// Decode parses one RSPF datagram payload, returning *Hello or *LSA.
func Decode(buf []byte) (any, error) {
	if len(buf) < 2 {
		return nil, ErrTruncated
	}
	if buf[0] != Version {
		return nil, ErrBadVersion
	}
	switch buf[1] {
	case msgHello:
		if len(buf) < 12 {
			return nil, ErrTruncated
		}
		h := &Hello{}
		copy(h.Router[:], buf[2:6])
		h.Seq = binary.BigEndian.Uint32(buf[6:10])
		n := int(binary.BigEndian.Uint16(buf[10:12]))
		if len(buf) < 12+4*n {
			return nil, ErrTruncated
		}
		for i := 0; i < n; i++ {
			var id ip.Addr
			copy(id[:], buf[12+4*i:])
			h.Heard = append(h.Heard, id)
		}
		return h, nil
	case msgLSA:
		if len(buf) < 14 {
			return nil, ErrTruncated
		}
		l := &LSA{}
		copy(l.Router[:], buf[2:6])
		l.Seq = binary.BigEndian.Uint32(buf[6:10])
		nl := int(binary.BigEndian.Uint16(buf[10:12]))
		nn := int(binary.BigEndian.Uint16(buf[12:14]))
		if len(buf) < 14+6*nl+10*nn {
			return nil, ErrTruncated
		}
		off := 14
		for i := 0; i < nl; i++ {
			var ln Link
			copy(ln.Neighbor[:], buf[off:])
			ln.Cost = binary.BigEndian.Uint16(buf[off+4 : off+6])
			l.Links = append(l.Links, ln)
			off += 6
		}
		for i := 0; i < nn; i++ {
			var n Network
			copy(n.Prefix[:], buf[off:])
			copy(n.Mask[:], buf[off+4:])
			n.Cost = binary.BigEndian.Uint16(buf[off+8 : off+10])
			l.Networks = append(l.Networks, n)
			off += 10
		}
		return l, nil
	default:
		return nil, ErrBadType
	}
}
