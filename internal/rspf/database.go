package rspf

import (
	"fmt"
	"sort"
	"strings"

	"packetradio/internal/ip"
	"packetradio/internal/sim"
)

// Database is the link-state database: the most recent LSA from every
// known router, with arrival times for aging out routers that died
// without saying goodbye.
type Database struct {
	lsas    map[ip.Addr]*LSA
	arrival map[ip.Addr]sim.Time
}

// NewDatabase returns an empty LSDB.
func NewDatabase() *Database {
	return &Database{
		lsas:    make(map[ip.Addr]*LSA),
		arrival: make(map[ip.Addr]sim.Time),
	}
}

// Install adopts l if it is newer (higher Seq) than the stored copy
// from the same router, reporting whether it was adopted. The arrival
// time feeds aging.
func (d *Database) Install(l *LSA, now sim.Time) bool {
	if old, ok := d.lsas[l.Router]; ok && old.Seq >= l.Seq {
		return false
	}
	d.lsas[l.Router] = l
	d.arrival[l.Router] = now
	return true
}

// Get returns the stored LSA for a router.
func (d *Database) Get(id ip.Addr) (*LSA, bool) {
	l, ok := d.lsas[id]
	return l, ok
}

// Len reports how many routers the database knows.
func (d *Database) Len() int { return len(d.lsas) }

// IDs returns the known router IDs in ascending address order — the
// canonical iteration order everywhere in this package, so that runs
// are deterministic despite Go's randomized map iteration.
func (d *Database) IDs() []ip.Addr {
	ids := make([]ip.Addr, 0, len(d.lsas))
	for id := range d.lsas {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Uint32() < ids[j].Uint32() })
	return ids
}

// Purge drops LSAs that arrived before cutoff, except the one from
// keep (a router never ages out its own advertisement). Returns how
// many were dropped.
func (d *Database) Purge(cutoff sim.Time, keep ip.Addr) int {
	n := 0
	for _, id := range d.IDs() {
		if id == keep {
			continue
		}
		if d.arrival[id] < cutoff {
			delete(d.lsas, id)
			delete(d.arrival, id)
			n++
		}
	}
	return n
}

// String renders the database for debugging.
func (d *Database) String() string {
	var b strings.Builder
	for _, id := range d.IDs() {
		fmt.Fprintln(&b, d.lsas[id])
	}
	return b.String()
}

// Path is the SPF result for one destination router: total cost from
// the root and the ID of the first-hop router on the shortest path
// (equal to the destination itself for direct neighbors).
type Path struct {
	Dist     uint32
	FirstHop ip.Addr
}

// ShortestPaths runs Dijkstra over the database rooted at root. A link
// A→B is traversed only when B's LSA also reports a link back to A
// (the two-way check that stops a half-dead adjacency from attracting
// traffic). Ties are broken toward the lower router ID, so the result
// is deterministic. Routers unreachable from root are absent from the
// returned map; root itself is present with Dist 0.
func (d *Database) ShortestPaths(root ip.Addr) map[ip.Addr]Path {
	paths := map[ip.Addr]Path{root: {Dist: 0, FirstHop: root}}
	if _, ok := d.lsas[root]; !ok {
		return paths
	}
	done := make(map[ip.Addr]bool)
	ids := d.IDs()
	for {
		// Extract the undone node with the smallest (dist, id). The
		// database is small (tens of routers), so a linear scan over
		// sorted IDs beats heap bookkeeping and is trivially
		// deterministic.
		var cur ip.Addr
		best := uint32(0)
		found := false
		for _, id := range ids {
			p, ok := paths[id]
			if !ok || done[id] {
				continue
			}
			if !found || p.Dist < best {
				cur, best, found = id, p.Dist, true
			}
		}
		if !found {
			return paths
		}
		done[cur] = true
		lsa := d.lsas[cur]
		for _, ln := range lsa.Links {
			back, ok := d.lsas[ln.Neighbor]
			if !ok || !hasLink(back, cur) {
				continue
			}
			cand := Path{Dist: best + uint32(ln.Cost), FirstHop: paths[cur].FirstHop}
			if cur == root {
				cand.FirstHop = ln.Neighbor
			}
			old, seen := paths[ln.Neighbor]
			if !seen || cand.Dist < old.Dist ||
				(cand.Dist == old.Dist && cand.FirstHop.Uint32() < old.FirstHop.Uint32()) {
				if !done[ln.Neighbor] {
					paths[ln.Neighbor] = cand
				}
			}
		}
	}
}

func hasLink(l *LSA, to ip.Addr) bool {
	for _, ln := range l.Links {
		if ln.Neighbor == to {
			return true
		}
	}
	return false
}
