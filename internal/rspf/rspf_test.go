package rspf

import (
	"fmt"
	"testing"
	"time"

	"packetradio/internal/ip"
	"packetradio/internal/sim"
)

func TestHelloRoundTrip(t *testing.T) {
	h := &Hello{
		Router: ip.MustAddr("44.24.0.28"),
		Seq:    9001,
		Heard:  []ip.Addr{ip.MustAddr("44.24.0.10"), ip.MustAddr("44.24.0.11")},
	}
	got, err := Decode(h.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	h2, ok := got.(*Hello)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if h2.Router != h.Router || h2.Seq != h.Seq || len(h2.Heard) != 2 ||
		h2.Heard[0] != h.Heard[0] || h2.Heard[1] != h.Heard[1] {
		t.Fatalf("round trip: %+v", h2)
	}
}

func TestLSARoundTrip(t *testing.T) {
	l := &LSA{
		Router: ip.MustAddr("128.95.1.1"),
		Seq:    7,
		Links: []Link{
			{Neighbor: ip.MustAddr("44.24.0.10"), Cost: 8333},
			{Neighbor: ip.MustAddr("128.95.1.2"), Cost: 1},
		},
		Networks: []Network{
			{Prefix: ip.MustAddr("44.0.0.0"), Mask: ip.MaskClassA, Cost: 8333},
			{Prefix: ip.MustAddr("128.95.1.1"), Mask: ip.MaskHost, Cost: 0},
		},
	}
	got, err := Decode(l.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	l2, ok := got.(*LSA)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if l2.Router != l.Router || l2.Seq != l.Seq ||
		len(l2.Links) != 2 || l2.Links[0] != l.Links[0] || l2.Links[1] != l.Links[1] ||
		len(l2.Networks) != 2 || l2.Networks[0] != l.Networks[0] || l2.Networks[1] != l.Networks[1] {
		t.Fatalf("round trip: %+v", l2)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{Version},
		{Version, 99, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		{2, msgHello, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		(&Hello{Seq: 1, Heard: []ip.Addr{{1, 2, 3, 4}}}).Marshal()[:13], // truncated heard list
	}
	for i, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Fatalf("case %d: decoded garbage", i)
		}
	}
}

func TestDatabaseInstallOrdering(t *testing.T) {
	d := NewDatabase()
	a := ip.MustAddr("10.0.0.1")
	if !d.Install(&LSA{Router: a, Seq: 3}, 0) {
		t.Fatal("first install refused")
	}
	if d.Install(&LSA{Router: a, Seq: 3}, 0) {
		t.Fatal("equal seq adopted")
	}
	if d.Install(&LSA{Router: a, Seq: 2}, 0) {
		t.Fatal("older seq adopted")
	}
	if !d.Install(&LSA{Router: a, Seq: 4}, 0) {
		t.Fatal("newer seq refused")
	}
	if l, _ := d.Get(a); l.Seq != 4 {
		t.Fatalf("stored seq = %d", l.Seq)
	}
}

func TestDatabasePurgeKeepsSelf(t *testing.T) {
	d := NewDatabase()
	self := ip.MustAddr("10.0.0.1")
	other := ip.MustAddr("10.0.0.2")
	d.Install(&LSA{Router: self, Seq: 1}, 0)
	d.Install(&LSA{Router: other, Seq: 1}, 0)
	if n := d.Purge(sim.Time(time.Hour), self); n != 1 {
		t.Fatalf("purged %d", n)
	}
	if _, ok := d.Get(self); !ok {
		t.Fatal("self purged")
	}
	if _, ok := d.Get(other); ok {
		t.Fatal("stale LSA survived")
	}
}

// buildDiamond wires A-B-D and A-C-D with the given costs, all links
// two-way.
func buildDiamond(ab, ac, bd, cd uint16) (*Database, [4]ip.Addr) {
	a, b := ip.MustAddr("10.0.0.1"), ip.MustAddr("10.0.0.2")
	c, dd := ip.MustAddr("10.0.0.3"), ip.MustAddr("10.0.0.4")
	d := NewDatabase()
	d.Install(&LSA{Router: a, Seq: 1, Links: []Link{{b, ab}, {c, ac}}}, 0)
	d.Install(&LSA{Router: b, Seq: 1, Links: []Link{{a, ab}, {dd, bd}}}, 0)
	d.Install(&LSA{Router: c, Seq: 1, Links: []Link{{a, ac}, {dd, cd}}}, 0)
	d.Install(&LSA{Router: dd, Seq: 1, Links: []Link{{b, bd}, {c, cd}}}, 0)
	return d, [4]ip.Addr{a, b, c, dd}
}

func TestShortestPathsPicksCheaperBranch(t *testing.T) {
	d, n := buildDiamond(10, 1, 10, 1)
	paths := d.ShortestPaths(n[0])
	p, ok := paths[n[3]]
	if !ok {
		t.Fatal("D unreachable")
	}
	if p.Dist != 2 || p.FirstHop != n[2] {
		t.Fatalf("path to D = %+v, want dist 2 via C", p)
	}
}

func TestShortestPathsTieBreaksLowerID(t *testing.T) {
	d, n := buildDiamond(5, 5, 5, 5)
	paths := d.ShortestPaths(n[0])
	p := paths[n[3]]
	// Both branches cost 10; the deterministic winner is the lower
	// first-hop ID (B = 10.0.0.2).
	if p.Dist != 10 || p.FirstHop != n[1] {
		t.Fatalf("path to D = %+v, want dist 10 via B", p)
	}
}

func TestShortestPathsTwoWayCheck(t *testing.T) {
	a, b := ip.MustAddr("10.0.0.1"), ip.MustAddr("10.0.0.2")
	d := NewDatabase()
	// A claims a link to B, but B does not reciprocate (half-dead RF
	// path): B must stay unreachable.
	d.Install(&LSA{Router: a, Seq: 1, Links: []Link{{b, 1}}}, 0)
	d.Install(&LSA{Router: b, Seq: 1}, 0)
	if _, ok := d.ShortestPaths(a)[b]; ok {
		t.Fatal("one-way link traversed")
	}
}

func TestShortestPathsChain(t *testing.T) {
	// A straight 10-node chain: dist grows linearly, first hop is
	// always the immediate neighbor.
	d := NewDatabase()
	ids := make([]ip.Addr, 10)
	for i := range ids {
		ids[i] = ip.AddrFrom(10, 0, 0, byte(i+1))
	}
	for i := range ids {
		l := &LSA{Router: ids[i], Seq: 1}
		if i > 0 {
			l.Links = append(l.Links, Link{ids[i-1], 3})
		}
		if i < len(ids)-1 {
			l.Links = append(l.Links, Link{ids[i+1], 3})
		}
		d.Install(l, 0)
	}
	paths := d.ShortestPaths(ids[0])
	for i := 1; i < len(ids); i++ {
		p := paths[ids[i]]
		if p.Dist != uint32(3*i) || p.FirstHop != ids[1] {
			t.Fatalf("node %d: %+v", i, p)
		}
	}
}

func TestShortestPathsDeterministic(t *testing.T) {
	// Same database built twice must give byte-identical results —
	// the property every convergence experiment depends on.
	render := func() string {
		d, n := buildDiamond(5, 5, 5, 5)
		paths := d.ShortestPaths(n[0])
		s := ""
		for _, id := range d.IDs() {
			s += fmt.Sprintf("%s:%v;", id, paths[id])
		}
		return s
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("nondeterministic SPF:\n%s\n%s", a, b)
	}
}
