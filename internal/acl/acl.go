// Package acl implements the paper's §4.3 access-control scheme for
// the gateway:
//
//	"One way to solve this problem is to maintain a table of authorized
//	addresses on the non-amateur side of the gateway. Associated with
//	each of these addresses is a list of hosts on the amateur side of
//	the gateway with which that host can communicate. Initially the
//	table starts off empty. Whenever a packet is received on the
//	amateur side destined for a non-amateur host, an entry is made in
//	the table, enabling the non-amateur host to send packets in the
//	other direction. After a certain period of time, these entries are
//	removed if packets have not been received from the amateur side of
//	the gateway."
//
// plus the two augmenting ICMP messages (add with TTL, forced remove)
// with callsign+password authentication required from the non-amateur
// side.
package acl

import (
	"time"

	"packetradio/internal/icmp"
	"packetradio/internal/ip"
	"packetradio/internal/sim"
)

// Stats counts table activity.
type Stats struct {
	AutoAdded    uint64 // entries created by amateur-originated traffic
	Refreshed    uint64 // expiry pushed back by amateur traffic
	Allowed      uint64 // inbound packets passed
	Blocked      uint64 // inbound packets refused
	Expired      uint64 // entries removed by idle timeout
	ICMPAdds     uint64
	ICMPDels     uint64
	AuthFailures uint64
}

type pairKey struct {
	nonAmateur ip.Addr
	amateur    ip.Addr
}

// Table is the gateway authorization table.
type Table struct {
	// IdleTTL is how long an auto-created entry lives without fresh
	// amateur-side traffic. The paper leaves the period open; 10
	// minutes is our default.
	IdleTTL time.Duration

	// Operators maps control-operator callsigns to passwords for
	// authenticating ICMP control messages from the non-amateur side.
	Operators map[string]string

	Stats Stats

	sched   *sim.Scheduler
	entries map[pairKey]sim.Time // expiry instant
	sweep   *sim.Event
}

// New builds an empty table.
func New(sched *sim.Scheduler) *Table {
	return &Table{
		IdleTTL:   10 * time.Minute,
		Operators: make(map[string]string),
		sched:     sched,
		entries:   make(map[pairKey]sim.Time),
	}
}

// Len reports live entries (expired ones are purged lazily).
func (t *Table) Len() int {
	now := t.sched.Now()
	n := 0
	for _, exp := range t.entries {
		if exp > now {
			n++
		}
	}
	return n
}

// NoteOutbound records amateur→non-amateur traffic, creating or
// refreshing the authorization for the reverse direction.
func (t *Table) NoteOutbound(amateur, nonAmateur ip.Addr) {
	k := pairKey{nonAmateur, amateur}
	exp := t.sched.Now().Add(t.IdleTTL)
	if old, ok := t.entries[k]; ok && old > t.sched.Now() {
		t.Stats.Refreshed++
	} else {
		t.Stats.AutoAdded++
	}
	t.entries[k] = exp
	t.scheduleSweep()
}

// Allowed reports whether nonAmateur may currently send to amateur,
// counting the decision.
func (t *Table) Allowed(nonAmateur, amateur ip.Addr) bool {
	k := pairKey{nonAmateur, amateur}
	exp, ok := t.entries[k]
	if !ok || t.sched.Now() >= exp {
		if ok {
			delete(t.entries, k)
			t.Stats.Expired++
		}
		t.Stats.Blocked++
		return false
	}
	t.Stats.Allowed++
	return true
}

// Add installs an authorization explicitly (the ICMP add message) for
// ttl; zero ttl uses IdleTTL.
func (t *Table) Add(nonAmateur, amateur ip.Addr, ttl time.Duration) {
	if ttl <= 0 {
		ttl = t.IdleTTL
	}
	t.entries[pairKey{nonAmateur, amateur}] = t.sched.Now().Add(ttl)
	t.scheduleSweep()
}

// Remove deletes an authorization (the control-operator cutoff),
// reporting whether it existed.
func (t *Table) Remove(nonAmateur, amateur ip.Addr) bool {
	k := pairKey{nonAmateur, amateur}
	_, ok := t.entries[k]
	delete(t.entries, k)
	return ok
}

// scheduleSweep keeps exactly one pending sweep event while entries
// exist, so idle tables leave the event queue empty.
func (t *Table) scheduleSweep() {
	if t.sweep != nil && !t.sweep.Cancelled() {
		return
	}
	if len(t.entries) == 0 {
		return
	}
	t.sweep = t.sched.After(t.IdleTTL, func() {
		now := t.sched.Now()
		for k, exp := range t.entries {
			if now >= exp {
				delete(t.entries, k)
				t.Stats.Expired++
			}
		}
		t.sweep = nil
		t.scheduleSweep()
	})
}

// HandleICMP processes a gateway authorization message. fromAmateur
// says which side of the gateway the datagram arrived on; messages
// from the non-amateur side must authenticate with a configured
// control operator's callsign and password. Returns true if the
// message was consumed (it was an auth type).
func (t *Table) HandleICMP(m *icmp.Message, fromAmateur bool) bool {
	if m.Type != icmp.TypeGatewayAuthAdd && m.Type != icmp.TypeGatewayAuthDel {
		return false
	}
	p, err := icmp.UnmarshalAuth(m.Body)
	if err != nil {
		t.Stats.AuthFailures++
		return true
	}
	if !fromAmateur {
		want, ok := t.Operators[p.Callsign]
		if !ok || want != p.Password {
			t.Stats.AuthFailures++
			return true
		}
	}
	switch m.Type {
	case icmp.TypeGatewayAuthAdd:
		t.Stats.ICMPAdds++
		t.Add(p.NonAmateur, p.Amateur, time.Duration(p.TTLSeconds)*time.Second)
	case icmp.TypeGatewayAuthDel:
		t.Stats.ICMPDels++
		t.Remove(p.NonAmateur, p.Amateur)
	}
	return true
}
