package acl

import (
	"testing"
	"time"

	"packetradio/internal/icmp"
	"packetradio/internal/ip"
	"packetradio/internal/sim"
)

var (
	pc   = ip.MustAddr("44.24.0.10")
	inet = ip.MustAddr("128.95.1.2")
)

func TestStartsEmptyAndBlocks(t *testing.T) {
	s := sim.NewScheduler(1)
	tb := New(s)
	if tb.Len() != 0 {
		t.Fatal("table not empty")
	}
	if tb.Allowed(inet, pc) {
		t.Fatal("empty table allowed traffic")
	}
	if tb.Stats.Blocked != 1 {
		t.Fatalf("stats: %+v", tb.Stats)
	}
}

func TestOutboundOpensReverse(t *testing.T) {
	s := sim.NewScheduler(1)
	tb := New(s)
	tb.NoteOutbound(pc, inet)
	if !tb.Allowed(inet, pc) {
		t.Fatal("reverse path blocked after outbound")
	}
	// Pairing is exact: a different amateur host is still blocked.
	if tb.Allowed(inet, ip.MustAddr("44.24.0.11")) {
		t.Fatal("unrelated amateur host allowed")
	}
	// And a different Internet host cannot use the entry.
	if tb.Allowed(ip.MustAddr("128.95.1.3"), pc) {
		t.Fatal("unrelated internet host allowed")
	}
}

func TestIdleExpiry(t *testing.T) {
	s := sim.NewScheduler(1)
	tb := New(s)
	tb.IdleTTL = time.Minute
	tb.NoteOutbound(pc, inet)
	s.RunFor(30 * time.Second)
	if !tb.Allowed(inet, pc) {
		t.Fatal("expired too early")
	}
	s.RunFor(2 * time.Minute)
	if tb.Allowed(inet, pc) {
		t.Fatal("entry survived idle TTL")
	}
	if tb.Stats.Expired == 0 {
		t.Fatal("no expiry recorded")
	}
}

func TestRefreshExtendsLifetime(t *testing.T) {
	s := sim.NewScheduler(1)
	tb := New(s)
	tb.IdleTTL = time.Minute
	tb.NoteOutbound(pc, inet)
	s.RunFor(45 * time.Second)
	tb.NoteOutbound(pc, inet) // refresh
	s.RunFor(45 * time.Second)
	if !tb.Allowed(inet, pc) {
		t.Fatal("refresh did not extend lifetime")
	}
	if tb.Stats.Refreshed != 1 || tb.Stats.AutoAdded != 1 {
		t.Fatalf("stats: %+v", tb.Stats)
	}
}

func TestSweepCleansWithoutQueries(t *testing.T) {
	s := sim.NewScheduler(1)
	tb := New(s)
	tb.IdleTTL = time.Minute
	tb.NoteOutbound(pc, inet)
	s.RunFor(10 * time.Minute) // sweep timer does the work
	if tb.Len() != 0 {
		t.Fatal("sweep left stale entries")
	}
	if s.Pending() != 0 {
		t.Fatal("sweep timer leaked into empty table")
	}
}

func TestICMPAddFromAmateurSideNoAuth(t *testing.T) {
	s := sim.NewScheduler(1)
	tb := New(s)
	m := icmp.NewAuthAdd(&icmp.AuthPayload{TTLSeconds: 120, Amateur: pc, NonAmateur: inet})
	if !tb.HandleICMP(m, true) {
		t.Fatal("auth message not consumed")
	}
	if !tb.Allowed(inet, pc) {
		t.Fatal("add not honored")
	}
}

func TestICMPAddFromInternetRequiresPassword(t *testing.T) {
	s := sim.NewScheduler(1)
	tb := New(s)
	tb.Operators["N7AKR"] = "secret"
	bad := icmp.NewAuthAdd(&icmp.AuthPayload{TTLSeconds: 120, Amateur: pc, NonAmateur: inet, Callsign: "N7AKR", Password: "nope"})
	tb.HandleICMP(bad, false)
	if tb.Allowed(inet, pc) {
		t.Fatal("bad password accepted")
	}
	if tb.Stats.AuthFailures != 1 {
		t.Fatalf("stats: %+v", tb.Stats)
	}
	unknown := icmp.NewAuthAdd(&icmp.AuthPayload{TTLSeconds: 120, Amateur: pc, NonAmateur: inet, Callsign: "KC0XXX", Password: "x"})
	tb.HandleICMP(unknown, false)
	if tb.Stats.AuthFailures != 2 {
		t.Fatal("unknown operator accepted")
	}
	good := icmp.NewAuthAdd(&icmp.AuthPayload{TTLSeconds: 120, Amateur: pc, NonAmateur: inet, Callsign: "N7AKR", Password: "secret"})
	tb.HandleICMP(good, false)
	if !tb.Allowed(inet, pc) {
		t.Fatal("good credentials refused")
	}
}

func TestICMPDelRemoves(t *testing.T) {
	s := sim.NewScheduler(1)
	tb := New(s)
	tb.NoteOutbound(pc, inet)
	m := icmp.NewAuthDel(&icmp.AuthPayload{Amateur: pc, NonAmateur: inet})
	tb.HandleICMP(m, true)
	if tb.Allowed(inet, pc) {
		t.Fatal("del not honored")
	}
	if tb.Stats.ICMPDels != 1 {
		t.Fatalf("stats: %+v", tb.Stats)
	}
}

func TestNonAuthICMPNotConsumed(t *testing.T) {
	s := sim.NewScheduler(1)
	tb := New(s)
	if tb.HandleICMP(icmp.NewEcho(1, 1, nil), true) {
		t.Fatal("echo consumed by ACL")
	}
}

func TestMalformedAuthCounted(t *testing.T) {
	s := sim.NewScheduler(1)
	tb := New(s)
	m := &icmp.Message{Type: icmp.TypeGatewayAuthAdd, Body: []byte{1, 2}}
	if !tb.HandleICMP(m, true) {
		t.Fatal("malformed auth not consumed")
	}
	if tb.Stats.AuthFailures != 1 {
		t.Fatalf("stats: %+v", tb.Stats)
	}
}

func TestExplicitAddWithTTL(t *testing.T) {
	s := sim.NewScheduler(1)
	tb := New(s)
	tb.Add(inet, pc, 10*time.Second)
	s.RunFor(5 * time.Second)
	if !tb.Allowed(inet, pc) {
		t.Fatal("explicit add not honored")
	}
	s.RunFor(10 * time.Second)
	if tb.Allowed(inet, pc) {
		t.Fatal("explicit TTL not honored")
	}
	if !func() bool { tb.Add(inet, pc, 0); return tb.Allowed(inet, pc) }() {
		t.Fatal("zero TTL should use IdleTTL")
	}
	if tb.Remove(inet, pc) != true || tb.Remove(inet, pc) != false {
		t.Fatal("Remove semantics")
	}
}
