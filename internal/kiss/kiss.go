// Package kiss implements the KISS ("Keep It Simple, Stupid")
// host-to-TNC framing protocol of Chepponis & Karn (6th ARRL Computer
// Networking Conference, 1987), the protocol the paper's pseudo-driver
// speaks over the RS-232 line to the TNC.
//
// KISS is a byte-stuffing protocol: each frame is delimited by FEND
// (0xC0); occurrences of FEND and FESC (0xDB) inside the frame are
// escaped as FESC TFEND and FESC TFESC. The first byte of every frame is
// a command byte whose low nibble is the command and high nibble the TNC
// port; command 0 carries link data, commands 1-6 set TNC parameters.
//
// The Decoder is a streaming state machine: the paper's most delicate
// kernel routine is the tty interrupt handler that "buffer[s]
// characters ... decod[ing] escaped frame end characters on the fly".
// PutByte is that per-character path; Write is the burst-mode
// equivalent the driver in internal/core now uses, consuming a whole
// serial run per call with identical decoding semantics.
package kiss

import (
	"errors"
	"fmt"
)

// Framing bytes.
const (
	FEND  = 0xC0 // frame end / delimiter
	FESC  = 0xDB // frame escape
	TFEND = 0xDC // transposed FEND (follows FESC)
	TFESC = 0xDD // transposed FESC (follows FESC)
)

// Command codes (low nibble of the command byte).
const (
	CmdData       = 0x0 // payload is a link-layer frame
	CmdTXDelay    = 0x1 // keyup delay, units of 10 ms
	CmdPersist    = 0x2 // CSMA persistence parameter p*256-1
	CmdSlotTime   = 0x3 // CSMA slot interval, units of 10 ms
	CmdTXTail     = 0x4 // time to hold transmitter after frame, 10 ms units
	CmdFullDuplex = 0x5 // 0 = half duplex CSMA, nonzero = full duplex
	CmdSetHW      = 0x6 // hardware-specific
	CmdReturn     = 0xF // exit KISS mode, return control to TNC ROM
)

// Frame is a decoded KISS frame: the port and command from the command
// byte, plus the unescaped payload (for CmdData, a raw AX.25 frame
// without FCS; the KISS TNC owns the checksum).
type Frame struct {
	Port    uint8 // TNC port, 0-15
	Command uint8 // one of the Cmd* constants
	Payload []byte
}

func (f Frame) String() string {
	return fmt.Sprintf("kiss{port=%d cmd=%#x len=%d}", f.Port, f.Command, len(f.Payload))
}

// ErrBadCommand reports a malformed command byte (CmdReturn with a
// nonzero port nibble is the only reserved combination KISS defines;
// we accept everything else).
var ErrBadCommand = errors.New("kiss: malformed command byte")

// Encode appends the KISS encoding of a data frame for port to dst and
// returns the extended slice. The frame is delimited by FEND on both
// sides, as recommended to flush line noise.
func Encode(dst []byte, port uint8, payload []byte) []byte {
	return EncodeCommand(dst, port, CmdData, payload)
}

// EncodeCommand appends an arbitrary-command KISS frame. Parameter
// frames (CmdTXDelay etc.) conventionally carry a single payload byte.
func EncodeCommand(dst []byte, port, command uint8, payload []byte) []byte {
	dst = append(dst, FEND)
	dst = appendEscaped(dst, (port<<4)|(command&0x0F))
	for _, b := range payload {
		dst = appendEscaped(dst, b)
	}
	return append(dst, FEND)
}

func appendEscaped(dst []byte, b byte) []byte {
	switch b {
	case FEND:
		return append(dst, FESC, TFEND)
	case FESC:
		return append(dst, FESC, TFESC)
	default:
		return append(dst, b)
	}
}

// EncodedLen reports the exact number of bytes Encode will append for
// payload: the two FENDs, the command byte, and escapes.
func EncodedLen(payload []byte) int {
	n := 3 // FEND + command + FEND (command byte 0x00 never needs escaping)
	for _, b := range payload {
		if b == FEND || b == FESC {
			n += 2
		} else {
			n++
		}
	}
	return n
}

// Decoder is a streaming KISS decoder. Feed it received bytes one at a
// time with PutByte (as a serial interrupt handler would); completed
// frames are delivered to the Frame callback. The decoder tolerates
// line noise between frames, back-to-back FENDs, and oversized frames
// (dropped and counted, like a kernel buffer overrun).
type Decoder struct {
	// Frame is invoked for each complete, non-empty frame. The payload
	// slice is freshly allocated and owned by the callee.
	Frame func(Frame)

	// MaxFrame bounds the unescaped frame size (command byte included).
	// Frames that grow beyond it are discarded and counted in Overruns.
	// Zero means DefaultMaxFrame.
	MaxFrame int

	// Counters.
	Frames   uint64 // complete frames delivered
	Overruns uint64 // frames dropped for exceeding MaxFrame
	BadEsc   uint64 // FESC followed by neither TFEND nor TFESC

	buf     []byte
	inFrame bool
	escaped bool
	dropped bool
}

// DefaultMaxFrame is the decoder buffer limit when MaxFrame is zero:
// enough for a full AX.25 frame (1 control + 1 PID + 70 address + 256
// data, doubled for safety) plus the command byte.
const DefaultMaxFrame = 1024

func (d *Decoder) max() int {
	if d.MaxFrame > 0 {
		return d.MaxFrame
	}
	return DefaultMaxFrame
}

// PutByte feeds one received byte into the decoder.
func (d *Decoder) PutByte(b byte) {
	if b == FEND {
		d.endFrame()
		return
	}
	if !d.inFrame {
		// Noise between frames: KISS says bytes outside FEND...FEND
		// delimiters that don't start a frame are garbage. A frame
		// starts at the first byte after a FEND, so any byte here means
		// we missed the opening FEND; treat it as starting a frame
		// anyway (the command byte will likely be garbage and the
		// upper layer drops it), matching permissive TNC behaviour.
		d.inFrame = true
	}
	if d.escaped {
		d.escaped = false
		switch b {
		case TFEND:
			b = FEND
		case TFESC:
			b = FESC
		default:
			// Protocol violation: pass the byte through but count it.
			d.BadEsc++
		}
	} else if b == FESC {
		d.escaped = true
		return
	}
	if d.dropped {
		return
	}
	if len(d.buf) >= d.max() {
		d.dropped = true
		d.Overruns++
		return
	}
	d.buf = append(d.buf, b)
}

// Write feeds a burst of bytes; it never fails. Implements io.Writer so
// a Decoder can terminate any byte pipeline.
//
// Write is the burst-mode fast path: runs of in-frame bytes that need
// no unescaping are appended to the frame buffer in one copy instead of
// one PutByte call each. Decoding is byte-for-byte identical to feeding
// the same stream through PutByte (the fuzz test cross-checks the two
// for arbitrary chunkings, including FESC split across chunks).
func (d *Decoder) Write(p []byte) (int, error) {
	n := len(p)
	for len(p) > 0 {
		// Escape pending, between frames, or at a framing byte: let the
		// state machine handle one byte, then rescan.
		if d.escaped || !d.inFrame || p[0] == FEND || p[0] == FESC {
			d.PutByte(p[0])
			p = p[1:]
			continue
		}
		// In-frame literal run: everything up to the next FEND or FESC.
		i := 1
		for i < len(p) && p[i] != FEND && p[i] != FESC {
			i++
		}
		d.putRun(p[:i])
		p = p[i:]
	}
	return n, nil
}

// putRun appends a run of in-frame bytes containing no framing bytes,
// with PutByte's exact overrun semantics: bytes fit while the buffer is
// below the limit; the first byte past it drops the frame and counts
// one overrun.
func (d *Decoder) putRun(run []byte) {
	if d.dropped {
		return
	}
	if avail := d.max() - len(d.buf); len(run) > avail {
		if avail > 0 {
			d.buf = append(d.buf, run[:avail]...)
		}
		d.dropped = true
		d.Overruns++
		return
	}
	d.buf = append(d.buf, run...)
}

func (d *Decoder) endFrame() {
	buf := d.buf
	d.buf = d.buf[:0]
	wasDropped := d.dropped
	d.inFrame, d.escaped, d.dropped = false, false, false
	if wasDropped || len(buf) == 0 {
		return // empty frame between back-to-back FENDs, or overrun
	}
	cmd := buf[0]
	payload := make([]byte, len(buf)-1)
	copy(payload, buf[1:])
	d.Frames++
	if d.Frame != nil {
		d.Frame(Frame{Port: cmd >> 4, Command: cmd & 0x0F, Payload: payload})
	}
}

// Reset discards any partial frame state.
func (d *Decoder) Reset() {
	d.buf = d.buf[:0]
	d.inFrame, d.escaped, d.dropped = false, false, false
}

// DecodeAll decodes every complete frame in p, for tools and tests that
// have the whole byte stream in memory.
func DecodeAll(p []byte) []Frame {
	var frames []Frame
	d := Decoder{Frame: func(f Frame) { frames = append(frames, f) }}
	for _, b := range p {
		d.PutByte(b)
	}
	return frames
}

// Params are the TNC channel-access parameters settable over KISS
// (commands 1-6). Zero value = KISS defaults.
type Params struct {
	TXDelay    byte // keyup delay in 10 ms units (default 50 = 500 ms)
	Persist    byte // p = (Persist+1)/256 (default 63 -> p=0.25)
	SlotTime   byte // slot in 10 ms units (default 10 = 100 ms)
	TXTail     byte // obsolete; kept for completeness
	FullDuplex bool
}

// DefaultParams returns the KISS-specified defaults.
func DefaultParams() Params {
	return Params{TXDelay: 50, Persist: 63, SlotTime: 10, TXTail: 0}
}

// Apply updates p from a parameter frame; data frames and unknown
// commands are ignored. Returns whether the frame changed a parameter.
func (p *Params) Apply(f Frame) bool {
	arg := byte(0)
	if len(f.Payload) > 0 {
		arg = f.Payload[0]
	}
	switch f.Command {
	case CmdTXDelay:
		p.TXDelay = arg
	case CmdPersist:
		p.Persist = arg
	case CmdSlotTime:
		p.SlotTime = arg
	case CmdTXTail:
		p.TXTail = arg
	case CmdFullDuplex:
		p.FullDuplex = arg != 0
	default:
		return false
	}
	return true
}
