package kiss

import (
	"bytes"
	"fmt"
	"testing"
)

// decoderState snapshots everything observable about a Decoder: the
// delivered frames and every counter, plus the pending partial-frame
// state (so mid-stream divergence at chunk boundaries is caught even
// when no frame has completed yet).
type decoderState struct {
	frames   []Frame
	frameCnt uint64
	overruns uint64
	badEsc   uint64
	buf      []byte
	inFrame  bool
	escaped  bool
	dropped  bool
}

func capture(d *Decoder, frames []Frame) decoderState {
	return decoderState{
		frames:   frames,
		frameCnt: d.Frames,
		overruns: d.Overruns,
		badEsc:   d.BadEsc,
		buf:      append([]byte(nil), d.buf...),
		inFrame:  d.inFrame,
		escaped:  d.escaped,
		dropped:  d.dropped,
	}
}

func (a decoderState) equal(b decoderState) bool {
	if a.frameCnt != b.frameCnt || a.overruns != b.overruns || a.badEsc != b.badEsc ||
		a.inFrame != b.inFrame || a.escaped != b.escaped || a.dropped != b.dropped ||
		!bytes.Equal(a.buf, b.buf) || len(a.frames) != len(b.frames) {
		return false
	}
	for i := range a.frames {
		if a.frames[i].Port != b.frames[i].Port || a.frames[i].Command != b.frames[i].Command ||
			!bytes.Equal(a.frames[i].Payload, b.frames[i].Payload) {
			return false
		}
	}
	return true
}

// FuzzDecoder cross-checks byte-at-a-time PutByte decoding against bulk
// Write decoding for arbitrary input streams and arbitrary chunk split
// points — including FESC escapes split across a chunk boundary, the
// case the burst-mode serial path makes common.
func FuzzDecoder(f *testing.F) {
	f.Add([]byte{FEND, 0x00, 'h', 'i', FEND}, uint16(1))
	f.Add([]byte{FEND, 0x10, FESC, TFEND, FESC, TFESC, FEND}, uint16(2))
	// FESC as the last byte of a chunk (splitSize 3 splits mid-escape).
	f.Add([]byte{FEND, 0x00, FESC, TFEND, 'x', FEND}, uint16(3))
	// Bad escape, noise between frames, back-to-back FENDs.
	f.Add([]byte{'n', 'o', FEND, FEND, 0x00, FESC, 'Q', FEND}, uint16(2))
	// Overrun: more than MaxFrame bytes inside one frame.
	big := append([]byte{FEND, 0x00}, bytes.Repeat([]byte{'a'}, 40)...)
	f.Add(append(big, FEND), uint16(7))

	f.Fuzz(func(t *testing.T, data []byte, splitSize uint16) {
		// A small MaxFrame makes the overrun path reachable with short
		// fuzz inputs.
		const maxFrame = 32
		var refFrames, bulkFrames []Frame
		ref := Decoder{MaxFrame: maxFrame, Frame: func(fr Frame) { refFrames = append(refFrames, fr) }}
		bulk := Decoder{MaxFrame: maxFrame, Frame: func(fr Frame) { bulkFrames = append(bulkFrames, fr) }}

		for _, b := range data {
			ref.PutByte(b)
		}

		split := int(splitSize%64) + 1
		for off := 0; off < len(data); off += split {
			end := off + split
			if end > len(data) {
				end = len(data)
			}
			if n, err := bulk.Write(data[off:end]); err != nil || n != end-off {
				t.Fatalf("Write returned (%d, %v), want (%d, nil)", n, err, end-off)
			}
		}

		a, b := capture(&ref, refFrames), capture(&bulk, bulkFrames)
		if !a.equal(b) {
			t.Fatalf("byte-at-a-time and bulk decode diverged (split=%d)\n per-byte: %+v\n bulk:     %+v",
				split, a, b)
		}
	})
}

// TestWriteMatchesPutByteOnEveryPrefixSplit exhaustively checks a
// delicate stream at every single split point, so the boundary cases
// (FESC at the end of a chunk, FEND first in a chunk, overrun mid-run)
// are covered deterministically even without the fuzz corpus.
func TestWriteMatchesPutByteOnEveryPrefixSplit(t *testing.T) {
	stream := []byte{
		'n', FEND, 0x00, FESC, TFEND, 'a', FESC, TFESC, FEND, // frame with both escapes
		FEND, 0x10, FESC, 'Q', FEND, // bad escape
		FEND, 0x00, // start of oversized frame
	}
	stream = append(stream, bytes.Repeat([]byte{'z'}, 40)...)
	stream = append(stream, FEND)

	const maxFrame = 24
	for cut := 0; cut <= len(stream); cut++ {
		var refFrames, bulkFrames []Frame
		ref := Decoder{MaxFrame: maxFrame, Frame: func(fr Frame) { refFrames = append(refFrames, fr) }}
		bulk := Decoder{MaxFrame: maxFrame, Frame: func(fr Frame) { bulkFrames = append(bulkFrames, fr) }}
		for _, b := range stream {
			ref.PutByte(b)
		}
		bulk.Write(stream[:cut])
		bulk.Write(stream[cut:])
		a, b := capture(&ref, refFrames), capture(&bulk, bulkFrames)
		if !a.equal(b) {
			t.Fatalf("divergence at split %d:\n per-byte: %s\n bulk:     %s", cut, dump(a), dump(b))
		}
	}
}

func dump(s decoderState) string {
	return fmt.Sprintf("frames=%d overruns=%d badesc=%d buf=%x inFrame=%v escaped=%v dropped=%v",
		s.frameCnt, s.overruns, s.badEsc, s.buf, s.inFrame, s.escaped, s.dropped)
}
