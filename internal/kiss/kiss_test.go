package kiss

import (
	"bytes"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, payload []byte) Frame {
	t.Helper()
	enc := Encode(nil, 0, payload)
	frames := DecodeAll(enc)
	if len(frames) != 1 {
		t.Fatalf("decoded %d frames, want 1 (enc=% x)", len(frames), enc)
	}
	return frames[0]
}

func TestEncodeSimple(t *testing.T) {
	enc := Encode(nil, 0, []byte("TEST"))
	want := []byte{FEND, 0x00, 'T', 'E', 'S', 'T', FEND}
	if !bytes.Equal(enc, want) {
		t.Fatalf("Encode = % x, want % x", enc, want)
	}
}

func TestEscaping(t *testing.T) {
	payload := []byte{FEND, FESC, 0x42, FEND}
	f := roundTrip(t, payload)
	if !bytes.Equal(f.Payload, payload) {
		t.Fatalf("payload = % x, want % x", f.Payload, payload)
	}
	enc := Encode(nil, 0, payload)
	want := []byte{FEND, 0x00, FESC, TFEND, FESC, TFESC, 0x42, FESC, TFEND, FEND}
	if !bytes.Equal(enc, want) {
		t.Fatalf("Encode = % x, want % x", enc, want)
	}
}

func TestPortAndCommandNibbles(t *testing.T) {
	enc := EncodeCommand(nil, 3, CmdTXDelay, []byte{25})
	frames := DecodeAll(enc)
	if len(frames) != 1 {
		t.Fatalf("decoded %d frames", len(frames))
	}
	f := frames[0]
	if f.Port != 3 || f.Command != CmdTXDelay || len(f.Payload) != 1 || f.Payload[0] != 25 {
		t.Fatalf("got %+v", f)
	}
}

func TestEmptyFramesIgnored(t *testing.T) {
	frames := DecodeAll([]byte{FEND, FEND, FEND, FEND})
	if len(frames) != 0 {
		t.Fatalf("decoded %d frames from empty delimiters, want 0", len(frames))
	}
}

func TestBackToBackFrames(t *testing.T) {
	var enc []byte
	enc = Encode(enc, 0, []byte("ONE"))
	enc = Encode(enc, 0, []byte("TWO"))
	frames := DecodeAll(enc)
	if len(frames) != 2 {
		t.Fatalf("decoded %d frames, want 2", len(frames))
	}
	if string(frames[0].Payload) != "ONE" || string(frames[1].Payload) != "TWO" {
		t.Fatalf("frames = %v", frames)
	}
}

func TestSharedFENDBetweenFrames(t *testing.T) {
	// A single FEND may both close one frame and open the next.
	raw := []byte{FEND, 0x00, 'A', FEND, 0x00, 'B', FEND}
	frames := DecodeAll(raw)
	if len(frames) != 2 {
		t.Fatalf("decoded %d frames, want 2", len(frames))
	}
	if string(frames[0].Payload) != "A" || string(frames[1].Payload) != "B" {
		t.Fatalf("frames = %v", frames)
	}
}

func TestByteAtATimeEqualsBurst(t *testing.T) {
	payload := bytes.Repeat([]byte{FEND, 'x', FESC}, 40)
	enc := Encode(nil, 5, payload)

	var single, burst []Frame
	d1 := Decoder{Frame: func(f Frame) { single = append(single, f) }}
	for _, b := range enc {
		d1.PutByte(b)
	}
	d2 := Decoder{Frame: func(f Frame) { burst = append(burst, f) }}
	if _, err := d2.Write(enc); err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || len(burst) != 1 {
		t.Fatalf("single=%d burst=%d, want 1 each", len(single), len(burst))
	}
	if !bytes.Equal(single[0].Payload, burst[0].Payload) {
		t.Fatal("byte-at-a-time and burst decodes disagree")
	}
	if single[0].Port != 5 {
		t.Fatalf("port = %d, want 5", single[0].Port)
	}
}

func TestOverrunDropsFrameAndCounts(t *testing.T) {
	var got []Frame
	d := Decoder{MaxFrame: 16, Frame: func(f Frame) { got = append(got, f) }}
	big := Encode(nil, 0, bytes.Repeat([]byte{'a'}, 100))
	d.Write(big)
	ok := Encode(nil, 0, []byte("ok"))
	d.Write(ok)
	if d.Overruns != 1 {
		t.Fatalf("Overruns = %d, want 1", d.Overruns)
	}
	if len(got) != 1 || string(got[0].Payload) != "ok" {
		t.Fatalf("got %v, want single 'ok' frame after overrun recovery", got)
	}
}

func TestBadEscapeCounted(t *testing.T) {
	var got []Frame
	d := Decoder{Frame: func(f Frame) { got = append(got, f) }}
	d.Write([]byte{FEND, 0x00, FESC, 0x41, FEND}) // FESC followed by 'A'
	if d.BadEsc != 1 {
		t.Fatalf("BadEsc = %d, want 1", d.BadEsc)
	}
	if len(got) != 1 || !bytes.Equal(got[0].Payload, []byte{0x41}) {
		t.Fatalf("got %v", got)
	}
}

func TestNoiseBeforeFirstFEND(t *testing.T) {
	// Bytes before any FEND are treated as a (garbage) frame; the
	// stream must resynchronize at the next FEND.
	var got []Frame
	d := Decoder{Frame: func(f Frame) { got = append(got, f) }}
	d.Write([]byte{0x13, 0x37})
	d.Write(Encode(nil, 0, []byte("good")))
	if len(got) != 2 {
		t.Fatalf("decoded %d frames, want 2 (noise + good)", len(got))
	}
	if string(got[1].Payload) != "good" {
		t.Fatalf("second frame = %v", got[1])
	}
}

func TestReset(t *testing.T) {
	var got []Frame
	d := Decoder{Frame: func(f Frame) { got = append(got, f) }}
	d.Write([]byte{FEND, 0x00, 'p', 'a', 'r', 't'})
	d.Reset()
	d.Write(Encode(nil, 0, []byte("whole")))
	if len(got) != 1 || string(got[0].Payload) != "whole" {
		t.Fatalf("got %v, want single 'whole' frame", got)
	}
}

func TestEncodedLenMatchesEncode(t *testing.T) {
	f := func(payload []byte) bool {
		return EncodedLen(payload) == len(Encode(nil, 0, payload))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(port uint8, payload []byte) bool {
		if len(payload) == 0 {
			return true // empty frames are indistinguishable from delimiters
		}
		port &= 0x0F
		enc := Encode(nil, port, payload)
		frames := DecodeAll(enc)
		return len(frames) == 1 &&
			frames[0].Port == port &&
			frames[0].Command == CmdData &&
			bytes.Equal(frames[0].Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConcatenatedFrames(t *testing.T) {
	f := func(payloads [][]byte) bool {
		var enc []byte
		want := 0
		for _, p := range payloads {
			if len(p) == 0 {
				continue
			}
			enc = Encode(enc, 0, p)
			want++
		}
		return len(DecodeAll(enc)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParamsApply(t *testing.T) {
	p := DefaultParams()
	if p.TXDelay != 50 || p.Persist != 63 || p.SlotTime != 10 {
		t.Fatalf("defaults = %+v", p)
	}
	cases := []struct {
		cmd   uint8
		arg   byte
		check func() bool
	}{
		{CmdTXDelay, 30, func() bool { return p.TXDelay == 30 }},
		{CmdPersist, 255, func() bool { return p.Persist == 255 }},
		{CmdSlotTime, 5, func() bool { return p.SlotTime == 5 }},
		{CmdTXTail, 2, func() bool { return p.TXTail == 2 }},
		{CmdFullDuplex, 1, func() bool { return p.FullDuplex }},
	}
	for _, c := range cases {
		if !p.Apply(Frame{Command: c.cmd, Payload: []byte{c.arg}}) {
			t.Fatalf("Apply(%#x) returned false", c.cmd)
		}
		if !c.check() {
			t.Fatalf("Apply(%#x) did not set parameter: %+v", c.cmd, p)
		}
	}
	if p.Apply(Frame{Command: CmdData, Payload: []byte{1}}) {
		t.Fatal("Apply(data) should return false")
	}
	if p.Apply(Frame{Command: CmdSetHW}) {
		t.Fatal("Apply(sethw) should return false")
	}
}

func TestFrameString(t *testing.T) {
	s := Frame{Port: 2, Command: CmdData, Payload: []byte{1, 2, 3}}.String()
	if s != "kiss{port=2 cmd=0x0 len=3}" {
		t.Fatalf("String() = %q", s)
	}
}
