// The doc-comment gate, mirroring staticcheck's ST1000/ST1020/ST1021/
// ST1022 locally (the lint job runs the real staticcheck; this test
// keeps the rules enforceable offline with the stock toolchain):
// every package has exactly one package comment, and every exported
// declaration in the API-surface packages has a doc comment that
// starts with the identifier it documents.
package packetradio

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// docStrictPkgs are the packages whose exported surfaces must be fully
// documented (the engine, the world builders, and the observability
// layer other packages program against, plus the scenario schema that
// SCENARIOS.md documents field by field).
var docStrictPkgs = map[string]bool{
	"internal/sim":         true,
	"internal/world":       true,
	"internal/obs":         true,
	"internal/scenario":    true,
	"internal/experiments": true,
}

func TestDocComments(t *testing.T) {
	pkgDirs := map[string][]string{} // dir -> go files (non-test)
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); path != "." && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		pkgDirs[dir] = append(pkgDirs[dir], path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	fset := token.NewFileSet()
	for dir, files := range pkgDirs {
		var pkgComments []string
		for _, path := range files {
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if f.Doc != nil {
				pkgComments = append(pkgComments, path)
			}
			if docStrictPkgs[dir] {
				checkExportedDocs(t, fset, f)
			}
		}
		// ST1000: one package comment per package — zero reads as an
		// undocumented package, two or more concatenate into garbage on
		// the godoc page.
		if len(pkgComments) == 0 {
			t.Errorf("%s: no package comment on any file", dir)
		}
		if len(pkgComments) > 1 {
			t.Errorf("%s: package comment on %d files (%v) — demote all but one with a blank line before the package clause",
				dir, len(pkgComments), pkgComments)
		}
	}
}

// checkExportedDocs enforces ST1020/ST1021/ST1022: every exported
// top-level func, type, and var/const group carries a doc comment
// starting with the name it documents.
func checkExportedDocs(t *testing.T, fset *token.FileSet, f *ast.File) {
	report := func(pos token.Pos, format string, args ...any) {
		t.Errorf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...))
	}
	checkStart := func(pos token.Pos, doc *ast.CommentGroup, name, kind string) {
		if doc == nil {
			// String and Error implement fmt.Stringer / error; their
			// meaning is the interface's, and a per-type comment would
			// only restate it.
			if name == "String" || name == "Error" {
				return
			}
			report(pos, "exported %s %s has no doc comment", kind, name)
			return
		}
		text := doc.Text()
		ok := strings.HasPrefix(text, name+" ") || strings.HasPrefix(text, name+"\n") ||
			strings.HasPrefix(text, "A "+name) || strings.HasPrefix(text, "An "+name) ||
			strings.HasPrefix(text, "The "+name) || strings.HasPrefix(text, "Deprecated:")
		if !ok {
			report(pos, "doc comment for exported %s %s should start with %q", kind, name, name)
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			// Methods on unexported receivers are not API surface.
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue
			}
			checkStart(d.Pos(), d.Doc, d.Name.Name, "function")
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					doc := s.Doc
					if doc == nil {
						doc = d.Doc
					}
					checkStart(s.Pos(), doc, s.Name.Name, "type")
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if !name.IsExported() {
							continue
						}
						// A group doc ("const ( ... )") covers its
						// members; per-spec docs and line comments
						// count too.
						if d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(name.Pos(), "exported %s %s has no doc comment (group or per-line)", d.Tok, name.Name)
						}
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a method receiver's base type is
// exported.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}
